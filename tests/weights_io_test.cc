#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dl/model_zoo.h"
#include "dl/weights_io.h"

namespace vista::dl {
namespace {

TEST(WeightsIoTest, RoundTripIsBitIdentical) {
  for (KnownCnn cnn : {KnownCnn::kAlexNet, KnownCnn::kVgg16,
                       KnownCnn::kResNet50}) {
    auto arch = BuildMicroArch(cnn);
    ASSERT_TRUE(arch.ok());
    auto model =
        CnnModel::Instantiate(*arch, 42, WeightInit::kGaborFirstConv);
    ASSERT_TRUE(model.ok());
    auto blob = SerializeCnnModel(*model);
    ASSERT_TRUE(blob.ok());
    auto loaded = DeserializeCnnModel(*blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    Rng rng(7);
    Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
    auto original = model->Run(img);
    auto reloaded = loaded->Run(img);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reloaded.ok());
    EXPECT_TRUE(original->AllClose(*reloaded, 0.0f))
        << KnownCnnToString(cnn);  // Exact, not approximate.
  }
}

TEST(WeightsIoTest, FileRoundTrip) {
  const std::string path = "/tmp/vista_weights_test.vcnn";
  auto arch = MicroAlexNetArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 3);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(SaveCnnModel(*model, path).ok());
  auto loaded = LoadCnnModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->arch().name(), "MicroAlexNet");
  EXPECT_EQ(loaded->arch().num_layers(), model->arch().num_layers());
  std::remove(path.c_str());
}

TEST(WeightsIoTest, PartialInferenceSurvivesReload) {
  // The whole point: "pretrained" weights drive the same staged execution
  // after reload.
  auto arch = MicroAlexNetArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 11);
  ASSERT_TRUE(model.ok());
  auto blob = SerializeCnnModel(*model);
  ASSERT_TRUE(blob.ok());
  auto loaded = DeserializeCnnModel(*blob);
  ASSERT_TRUE(loaded.ok());

  Rng rng(5);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  auto half = model->RunTo(img, 4);
  ASSERT_TRUE(half.ok());
  auto rest_original = model->RunRange(*half, 5, 7);
  auto rest_reloaded = loaded->RunRange(*half, 5, 7);
  ASSERT_TRUE(rest_original.ok());
  ASSERT_TRUE(rest_reloaded.ok());
  EXPECT_TRUE(rest_original->AllClose(*rest_reloaded, 0.0f));
}

TEST(WeightsIoTest, RejectsCorruptBlobs) {
  auto arch = MicroAlexNetArch();
  auto model = CnnModel::Instantiate(*arch, 3);
  auto blob = SerializeCnnModel(*model);
  ASSERT_TRUE(blob.ok());
  // Bad magic.
  std::vector<uint8_t> bad = *blob;
  bad[0] = 'X';
  EXPECT_FALSE(DeserializeCnnModel(bad).ok());
  // Truncations at several points.
  for (size_t cut : {size_t{4}, size_t{20}, blob->size() / 2,
                     blob->size() - 3}) {
    std::vector<uint8_t> truncated(blob->begin(), blob->begin() + cut);
    EXPECT_FALSE(DeserializeCnnModel(truncated).ok()) << "cut=" << cut;
  }
  // Trailing garbage.
  std::vector<uint8_t> extended = *blob;
  extended.push_back(0);
  EXPECT_FALSE(DeserializeCnnModel(extended).ok());
}

TEST(WeightsIoTest, SetWeightsValidatesShapesAndCount) {
  auto arch = MicroAlexNetArch();
  auto model = CnnModel::Instantiate(*arch, 3);
  ASSERT_TRUE(model.ok());
  const auto tensors = model->weight_tensors();
  ASSERT_FALSE(tensors.empty());
  // Too few.
  EXPECT_FALSE(model->SetWeights({}).ok());
  // Wrong shape in the first slot.
  std::vector<Tensor> wrong;
  wrong.push_back(Tensor(Shape{1}));
  for (size_t i = 1; i < tensors.size(); ++i) {
    wrong.push_back(*tensors[i]);
  }
  EXPECT_FALSE(model->SetWeights(wrong).ok());
}

TEST(WeightsIoTest, MissingFileIsIoError) {
  auto loaded = LoadCnnModel("/tmp/definitely_missing_weights.vcnn");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace vista::dl
