#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/real_executor.h"

namespace vista {
namespace {

struct Fixture {
  std::unique_ptr<df::Engine> engine;
  std::unique_ptr<dl::CnnModel> model;
  df::Table t_str;
  df::Table t_img;
  TransferWorkload workload;

  static Fixture Make(dl::KnownCnn cnn = dl::KnownCnn::kAlexNet,
                      int num_layers = 3, int num_records = 300,
                      df::EngineConfig engine_config = {}) {
    Fixture f;
    if (engine_config.num_workers == 1 &&
        engine_config.cpus_per_worker == 2) {
      engine_config.cpus_per_worker = 4;
    }
    f.engine = std::make_unique<df::Engine>(engine_config);
    auto arch = dl::BuildMicroArch(cnn);
    EXPECT_TRUE(arch.ok());
    auto model =
        dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
    EXPECT_TRUE(model.ok());
    f.model = std::make_unique<dl::CnnModel>(std::move(model).value());

    feat::MultimodalDatasetSpec spec;
    spec.num_records = num_records;
    spec.num_struct_features = 12;
    spec.image_size = 32;
    spec.seed = 3;
    auto data = feat::GenerateMultimodal(spec);
    EXPECT_TRUE(data.ok());
    f.t_str = f.engine->MakeTable(std::move(data->t_str), 6).value();
    f.t_img = f.engine->MakeTable(std::move(data->t_img), 6).value();

    f.workload.cnn = cnn;
    f.workload.layers = arch->TopLayers(num_layers).value();
    f.workload.model = DownstreamModel::kLogisticRegression;
    f.workload.training_iterations = 5;
    return f;
  }
};

RealExecutorConfig FastConfig() {
  RealExecutorConfig config;
  config.num_partitions = 6;
  config.lr.iterations = 5;
  return config;
}

TEST(RealExecutorTest, StagedPlanRunsEndToEnd) {
  Fixture f = Fixture::Make();
  RealExecutor executor(f.engine.get(), f.model.get());
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  ASSERT_TRUE(plan.ok());
  auto result = executor.Run(*plan, f.workload, f.t_str, f.t_img,
                             FastConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_layer.size(), 3u);
  for (const auto& layer : result->per_layer) {
    EXPECT_GT(layer.test_metrics.total(), 0);
    EXPECT_GE(layer.test_f1, 0.0);
    EXPECT_FALSE(layer.layer_name.empty());
  }
  EXPECT_GT(result->inference_flops, 0);
}

std::vector<Tensor> CalibrationBatch(const dl::CnnModel& model, int count) {
  Rng rng(77);
  std::vector<Tensor> images;
  for (int i = 0; i < count; ++i) {
    images.push_back(Tensor::RandomGaussian(model.arch().input_shape(), &rng));
  }
  return images;
}

TEST(RealExecutorTest, ValidateRejectsInt8WithoutCalibration) {
  Fixture f = Fixture::Make();
  RealExecutorConfig config = FastConfig();
  config.precision = dl::Precision::kInt8;
  Status st = config.Validate(f.model.get());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("calibration"), std::string::npos) << st;

  ASSERT_TRUE(f.model->CalibrateInt8(CalibrationBatch(*f.model, 2)).ok());
  EXPECT_TRUE(config.Validate(f.model.get()).ok());
}

TEST(RealExecutorTest, RunRejectsPlanConfigPrecisionMismatch) {
  Fixture f = Fixture::Make();
  ASSERT_TRUE(f.model->CalibrateInt8(CalibrationBatch(*f.model, 2)).ok());
  RealExecutor executor(f.engine.get(), f.model.get());

  // Plan compiled fp32, executor configured int8.
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  ASSERT_TRUE(plan.ok());
  RealExecutorConfig config = FastConfig();
  config.precision = dl::Precision::kInt8;
  auto result = executor.Run(*plan, f.workload, f.t_str, f.t_img, config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("compiled"), std::string::npos);

  // And the reverse: int8 plan, fp32 executor.
  TransferWorkload w8 = f.workload;
  w8.precision = dl::Precision::kInt8;
  auto plan8 = CompilePlan(LogicalPlan::kStaged, w8);
  ASSERT_TRUE(plan8.ok());
  auto result8 =
      executor.Run(*plan8, w8, f.t_str, f.t_img, FastConfig());
  ASSERT_FALSE(result8.ok());
  EXPECT_TRUE(result8.status().IsInvalidArgument());
}

TEST(RealExecutorTest, Int8StagedRunMetersQuantizedOps) {
  Fixture f = Fixture::Make();
  ASSERT_TRUE(f.model->CalibrateInt8(CalibrationBatch(*f.model, 2)).ok());
  f.model->EnableProfiling(&f.engine->metrics());
  RealExecutor executor(f.engine.get(), f.model.get());

  TransferWorkload w8 = f.workload;
  w8.precision = dl::Precision::kInt8;
  auto plan = CompilePlan(LogicalPlan::kStaged, w8);
  ASSERT_TRUE(plan.ok());
  RealExecutorConfig config = FastConfig();
  config.precision = dl::Precision::kInt8;
  auto result = executor.Run(*plan, w8, f.t_str, f.t_img, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_layer.size(), 3u);
  for (const auto& layer : result->per_layer) {
    EXPECT_GT(layer.test_metrics.total(), 0);
  }
  // The analytic accounting and the per-layer profiling counters both see
  // the quantized work.
  EXPECT_GT(result->inference_int8_ops, 0);
  EXPECT_GT(f.engine->stats().dl_int8_ops, 0);

  // An fp32 run of the same workload meters no int8 ops.
  auto plan32 = CompilePlan(LogicalPlan::kStaged, f.workload);
  ASSERT_TRUE(plan32.ok());
  auto result32 =
      executor.Run(*plan32, f.workload, f.t_str, f.t_img, FastConfig());
  ASSERT_TRUE(result32.ok());
  EXPECT_EQ(result32->inference_int8_ops, 0);
}

// The paper's Section 5.2 invariant: every logical plan trains identical
// downstream models for a given layer. With deterministic training, the
// test metrics must be bit-identical across plans, joins, and formats.
class PlanEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<LogicalPlan, df::JoinStrategy, df::PersistenceFormat>> {
};

TEST_P(PlanEquivalenceTest, SameModelsAsLazyBaseline) {
  const auto [logical, join, persistence] = GetParam();
  Fixture f = Fixture::Make(dl::KnownCnn::kAlexNet, 3, 200);
  RealExecutor executor(f.engine.get(), f.model.get());

  RealExecutorConfig config = FastConfig();
  auto baseline_plan = CompilePlan(LogicalPlan::kLazy, f.workload);
  ASSERT_TRUE(baseline_plan.ok());
  auto baseline =
      executor.Run(*baseline_plan, f.workload, f.t_str, f.t_img, config);
  ASSERT_TRUE(baseline.ok());

  config.join = join;
  config.persistence = persistence;
  auto plan = CompilePlan(logical, f.workload);
  ASSERT_TRUE(plan.ok());
  auto result = executor.Run(*plan, f.workload, f.t_str, f.t_img, config);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->per_layer.size(), baseline->per_layer.size());
  for (size_t i = 0; i < result->per_layer.size(); ++i) {
    EXPECT_EQ(result->per_layer[i].layer_index,
              baseline->per_layer[i].layer_index);
    EXPECT_EQ(result->per_layer[i].test_metrics.true_positives,
              baseline->per_layer[i].test_metrics.true_positives);
    EXPECT_EQ(result->per_layer[i].test_metrics.false_positives,
              baseline->per_layer[i].test_metrics.false_positives);
    EXPECT_EQ(result->per_layer[i].test_metrics.false_negatives,
              baseline->per_layer[i].test_metrics.false_negatives);
    EXPECT_DOUBLE_EQ(result->per_layer[i].test_f1,
                     baseline->per_layer[i].test_f1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlansJoinsFormats, PlanEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(LogicalPlan::kLazyReordered, LogicalPlan::kEager,
                          LogicalPlan::kEagerReordered, LogicalPlan::kStaged,
                          LogicalPlan::kStagedReordered),
        ::testing::Values(df::JoinStrategy::kShuffleHash,
                          df::JoinStrategy::kBroadcast),
        ::testing::Values(df::PersistenceFormat::kDeserialized,
                          df::PersistenceFormat::kSerialized)));

TEST(RealExecutorTest, LazyDoesRedundantInference) {
  Fixture f = Fixture::Make(dl::KnownCnn::kAlexNet, 3, 100);
  RealExecutor executor(f.engine.get(), f.model.get());
  RealExecutorConfig config = FastConfig();
  config.train_models = false;

  std::map<LogicalPlan, int64_t> flops;
  for (LogicalPlan p : {LogicalPlan::kLazy, LogicalPlan::kEager,
                        LogicalPlan::kStaged}) {
    auto plan = CompilePlan(p, f.workload);
    ASSERT_TRUE(plan.ok());
    auto result = executor.Run(*plan, f.workload, f.t_str, f.t_img, config);
    ASSERT_TRUE(result.ok());
    flops[p] = result->inference_flops;
  }
  // Staged and Eager never recompute; Lazy recomputes lower layers.
  EXPECT_EQ(flops[LogicalPlan::kStaged], flops[LogicalPlan::kEager]);
  EXPECT_GT(flops[LogicalPlan::kLazy], flops[LogicalPlan::kStaged]);
}

TEST(RealExecutorTest, RedundancyGrowsWithHigherLayers) {
  // The deeper into the top of the CNN L reaches, the more Lazy recomputes
  // relative to Staged (Section 5.1: "the more of the higher layers are
  // tried, ... the faster Vista will be").
  Fixture two = Fixture::Make(dl::KnownCnn::kAlexNet, 2, 50);
  Fixture four = Fixture::Make(dl::KnownCnn::kAlexNet, 4, 50);
  RealExecutorConfig config = FastConfig();
  config.train_models = false;
  auto ratio = [&](Fixture& f) {
    RealExecutor executor(f.engine.get(), f.model.get());
    auto lazy = executor.Run(*CompilePlan(LogicalPlan::kLazy, f.workload),
                             f.workload, f.t_str, f.t_img, config);
    auto staged = executor.Run(
        *CompilePlan(LogicalPlan::kStaged, f.workload), f.workload, f.t_str,
        f.t_img, config);
    EXPECT_TRUE(lazy.ok());
    EXPECT_TRUE(staged.ok());
    return static_cast<double>(lazy->inference_flops) /
           static_cast<double>(staged->inference_flops);
  };
  EXPECT_GT(ratio(four), ratio(two));
}

TEST(RealExecutorTest, PreMaterializedBaseSkipsLowLayerCompute) {
  Fixture f = Fixture::Make(dl::KnownCnn::kAlexNet, 3, 100);
  RealExecutor executor(f.engine.get(), f.model.get());
  RealExecutorConfig config = FastConfig();
  config.train_models = false;

  auto base = executor.PreMaterializeBase(f.workload, f.t_img, config);
  ASSERT_TRUE(base.ok());
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload, true);
  ASSERT_TRUE(plan.ok());
  auto pre = executor.Run(*plan, f.workload, f.t_str, *base, config);
  ASSERT_TRUE(pre.ok());

  auto full_plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  auto full =
      executor.Run(*full_plan, f.workload, f.t_str, f.t_img, config);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(pre->inference_flops, full->inference_flops);
}

TEST(RealExecutorTest, PreMaterializedResultsMatchFullRun) {
  Fixture f = Fixture::Make(dl::KnownCnn::kAlexNet, 3, 150);
  RealExecutor executor(f.engine.get(), f.model.get());
  RealExecutorConfig config = FastConfig();

  auto base = executor.PreMaterializeBase(f.workload, f.t_img, config);
  ASSERT_TRUE(base.ok());
  auto pre = executor.Run(*CompilePlan(LogicalPlan::kStaged, f.workload, true),
                          f.workload, f.t_str, *base, config);
  auto full = executor.Run(*CompilePlan(LogicalPlan::kStaged, f.workload),
                           f.workload, f.t_str, f.t_img, config);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE(full.ok());
  for (size_t i = 0; i < pre->per_layer.size(); ++i) {
    EXPECT_DOUBLE_EQ(pre->per_layer[i].test_f1, full->per_layer[i].test_f1);
  }
}

TEST(RealExecutorTest, UserMemoryExhaustionSurfacesAsCrash) {
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  engine_config.budgets.user = 10 * 1024;  // Absurdly small UDF budget.
  Fixture f =
      Fixture::Make(dl::KnownCnn::kAlexNet, 2, 200, engine_config);
  RealExecutor executor(f.engine.get(), f.model.get());
  auto plan = CompilePlan(LogicalPlan::kEager, f.workload);
  ASSERT_TRUE(plan.ok());
  auto result =
      executor.Run(*plan, f.workload, f.t_str, f.t_img, FastConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(RealExecutorTest, WorksWithSpillingStorage) {
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  engine_config.budgets.storage = 64 * 1024;  // Forces eviction churn.
  Fixture f =
      Fixture::Make(dl::KnownCnn::kAlexNet, 3, 200, engine_config);
  RealExecutor executor(f.engine.get(), f.model.get());
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  auto result =
      executor.Run(*plan, f.workload, f.t_str, f.t_img, FastConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->engine_stats.num_spills, 0);
  EXPECT_EQ(result->per_layer.size(), 3u);
}

TEST(RealExecutorTest, MicroResNetAndVggAlsoRun) {
  for (auto cnn : {dl::KnownCnn::kResNet50, dl::KnownCnn::kVgg16}) {
    Fixture f = Fixture::Make(cnn, 3, 120);
    RealExecutor executor(f.engine.get(), f.model.get());
    auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
    ASSERT_TRUE(plan.ok());
    auto result =
        executor.Run(*plan, f.workload, f.t_str, f.t_img, FastConfig());
    ASSERT_TRUE(result.ok()) << dl::KnownCnnToString(cnn) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->per_layer.size(), 3u);
  }
}

TEST(RealExecutorTest, DownstreamDecisionTreeAndMlp) {
  Fixture f = Fixture::Make(dl::KnownCnn::kAlexNet, 2, 150);
  RealExecutor executor(f.engine.get(), f.model.get());
  for (DownstreamModel m :
       {DownstreamModel::kDecisionTree, DownstreamModel::kMlp}) {
    TransferWorkload workload = f.workload;
    workload.model = m;
    workload.training_iterations = 3;
    auto plan = CompilePlan(LogicalPlan::kStaged, workload);
    ASSERT_TRUE(plan.ok());
    auto result =
        executor.Run(*plan, workload, f.t_str, f.t_img, FastConfig());
    ASSERT_TRUE(result.ok()) << DownstreamModelToString(m);
    EXPECT_EQ(result->per_layer.size(), 2u);
  }
}


TEST(RealExecutorTest, MultiImageRecordsAggregateFeatures) {
  // Multi-image support (paper future work): per-record features are the
  // element-wise mean of the per-image features.
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 2;
  df::Engine engine(engine_config);
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());

  Rng rng(13);
  Tensor a = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  df::Record multi;
  multi.id = 1;
  multi.struct_features = {1.0f};
  multi.images = {a, b};
  auto t_img = engine.MakeTable({multi}, 1).value();

  TransferWorkload workload;
  workload.cnn = dl::KnownCnn::kAlexNet;
  workload.layers = arch->TopLayers(1).value();
  RealExecutor executor(&engine, &*model);
  RealExecutorConfig config;
  config.num_partitions = 1;
  auto features = executor.PreMaterializeBase(workload, t_img, config);
  ASSERT_TRUE(features.ok());
  auto rows = engine.Collect(*features).value();
  ASSERT_EQ(rows.size(), 1u);

  // Expected: mean of per-image layer outputs.
  const int layer = workload.layers[0];
  Tensor fa = model->RunTo(a, layer).value();
  Tensor fb = model->RunTo(b, layer).value();
  Tensor expected = fa.Clone();
  for (int64_t i = 0; i < expected.num_elements(); ++i) {
    expected.set(i, 0.5f * (fa.at(i) + fb.at(i)));
  }
  EXPECT_TRUE(rows[0].features.at(0).AllClose(expected, 1e-5f));
}

TEST(TransferExtractorTest, AssemblesStructAndPooledFeatures) {
  df::Record r;
  r.id = 1;
  r.struct_features = {1.0f, 0.5f, -0.5f};
  r.features.Append(Tensor(Shape{2, 4, 4}));  // Pools to 2x2x2 = 8.
  auto extractor = MakeTransferExtractor(0, 2);
  std::vector<float> x;
  float label = 0;
  ASSERT_TRUE(extractor(r, &x, &label).ok());
  EXPECT_FLOAT_EQ(label, 1.0f);
  EXPECT_EQ(x.size(), 2u + 8u);
  EXPECT_FLOAT_EQ(x[0], 0.5f);
}

TEST(TransferExtractorTest, StructOnlyWhenSlotNegative) {
  df::Record r;
  r.struct_features = {0.0f, 2.0f};
  auto extractor = MakeTransferExtractor(-1, 2);
  std::vector<float> x;
  float label = 0;
  ASSERT_TRUE(extractor(r, &x, &label).ok());
  EXPECT_EQ(x.size(), 1u);
}

TEST(TransferExtractorTest, MissingSlotIsError) {
  df::Record r;
  r.struct_features = {0.0f};
  auto extractor = MakeTransferExtractor(3, 2);
  std::vector<float> x;
  float label = 0;
  EXPECT_FALSE(extractor(r, &x, &label).ok());
}

}  // namespace
}  // namespace vista
