#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vista {
namespace {

TEST(MatMulTest, HandComputed) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c->at(0), 58);
  EXPECT_FLOAT_EQ(c->at(1), 64);
  EXPECT_FLOAT_EQ(c->at(2), 139);
  EXPECT_FLOAT_EQ(c->at(3), 154);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  Tensor a = Tensor::RandomGaussian(Shape{4, 4}, &rng);
  Tensor eye(Shape{4, 4});
  for (int i = 0; i < 4; ++i) eye.set(i * 4 + i, 1.0f);
  auto c = MatMul(a, eye);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->AllClose(a, 1e-5f));
}

TEST(MatMulTest, RejectsBadShapes) {
  EXPECT_FALSE(MatMul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})).ok());
  EXPECT_FALSE(MatMul(Tensor(Shape{4}), Tensor(Shape{4, 2})).ok());
}

TEST(Im2ColTest, UnitKernelIsReshape) {
  Tensor input(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  auto cols = Im2Col(input, 1, 1, 0, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{1, 2, 4}));
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(cols->at(i), static_cast<float>(i + 1));
  }
}

TEST(Im2ColTest, PaddingZeroFills) {
  Tensor input = Tensor::Full(Shape{1, 2, 2}, 1.0f);
  auto cols = Im2Col(input, 3, 1, 1, 1);
  ASSERT_TRUE(cols.ok());
  // 3x3 kernel over a padded 2x2: center patch entries present, corners 0.
  EXPECT_EQ(cols->shape(), (Shape{1, 9, 4}));
  float sum = 0;
  for (int64_t i = 0; i < cols->num_elements(); ++i) sum += cols->at(i);
  EXPECT_FLOAT_EQ(sum, 16.0f);  // Each of 4 input pixels appears 4 times.
}

// Differential testing: the GEMM path must agree with the direct loops on
// random configurations, including strides, padding, and groups.
struct ConvCase {
  int channels, size, filters, kernel, stride, pad, groups;
};

class ConvDifferentialTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvDifferentialTest, GemmMatchesDirect) {
  const ConvCase c = GetParam();
  Rng rng(c.channels * 131 + c.kernel * 17 + c.stride);
  Tensor input =
      Tensor::RandomGaussian(Shape{c.channels, c.size, c.size}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{c.filters}, &rng);
  auto direct = Conv2D(input, w, b, c.stride, c.pad, c.groups);
  auto gemm = Conv2DGemm(input, w, b, c.stride, c.pad, c.groups);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(gemm.ok());
  EXPECT_EQ(direct->shape(), gemm->shape());
  EXPECT_TRUE(direct->AllClose(*gemm, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvDifferentialTest,
    ::testing::Values(ConvCase{1, 5, 1, 3, 1, 0, 1},
                      ConvCase{3, 8, 4, 3, 1, 1, 1},
                      ConvCase{4, 9, 6, 5, 2, 2, 1},
                      ConvCase{2, 7, 2, 1, 1, 0, 1},
                      ConvCase{4, 8, 8, 3, 1, 1, 2},
                      ConvCase{6, 11, 9, 3, 2, 1, 3},
                      ConvCase{8, 6, 8, 2, 2, 0, 4},
                      ConvCase{3, 16, 12, 7, 4, 3, 1}));

TEST(Conv2DGemmTest, RejectsBadConfigs) {
  Tensor input(Shape{3, 8, 8});
  Tensor w(Shape{4, 3, 3, 3});
  Tensor b(Shape{4});
  // Non-square kernel.
  EXPECT_FALSE(
      Conv2DGemm(input, Tensor(Shape{4, 3, 3, 2}), b, 1, 1).ok());
  // Groups not dividing channels.
  EXPECT_FALSE(Conv2DGemm(input, w, b, 1, 1, 2).ok());
  // Bias mismatch.
  EXPECT_FALSE(Conv2DGemm(input, w, Tensor(Shape{5}), 1, 1).ok());
}

}  // namespace
}  // namespace vista
