#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace vista {
namespace {

/// FMA contraction and the packed kernel's reordered summation differ from
/// the naive oracle by ~eps per accumulated term, which on catastrophic
/// cancellation (results near zero built from large terms) dwarfs any pure
/// relative bound. Tolerance is therefore mixed: 1e-4 relative plus an
/// absolute term scaled by the accumulation length.
void ExpectGemmClose(const Tensor& ref, const Tensor& got, int64_t k) {
  ASSERT_EQ(ref.shape(), got.shape());
  const float abs_tol =
      1e-5f * static_cast<float>(std::sqrt(static_cast<double>(k))) + 1e-5f;
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    const float r = ref.at(i);
    const float g = got.at(i);
    ASSERT_LE(std::abs(g - r), abs_tol + 1e-4f * std::abs(r))
        << "at " << i << ": ref=" << r << " got=" << g;
  }
}

TEST(MatMulTest, HandComputed) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c->at(0), 58);
  EXPECT_FLOAT_EQ(c->at(1), 64);
  EXPECT_FLOAT_EQ(c->at(2), 139);
  EXPECT_FLOAT_EQ(c->at(3), 154);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  Tensor a = Tensor::RandomGaussian(Shape{4, 4}, &rng);
  Tensor eye(Shape{4, 4});
  for (int i = 0; i < 4; ++i) eye.set(i * 4 + i, 1.0f);
  auto c = MatMul(a, eye);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->AllClose(a, 1e-5f));
}

TEST(MatMulTest, RejectsBadShapes) {
  EXPECT_FALSE(MatMul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})).ok());
  EXPECT_FALSE(MatMul(Tensor(Shape{4}), Tensor(Shape{4, 2})).ok());
}

TEST(Im2ColTest, UnitKernelIsReshape) {
  Tensor input(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  auto cols = Im2Col(input, 1, 1, 0, 1);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->shape(), (Shape{1, 2, 4}));
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(cols->at(i), static_cast<float>(i + 1));
  }
}

TEST(Im2ColTest, PaddingZeroFills) {
  Tensor input = Tensor::Full(Shape{1, 2, 2}, 1.0f);
  auto cols = Im2Col(input, 3, 1, 1, 1);
  ASSERT_TRUE(cols.ok());
  // 3x3 kernel over a padded 2x2: center patch entries present, corners 0.
  EXPECT_EQ(cols->shape(), (Shape{1, 9, 4}));
  float sum = 0;
  for (int64_t i = 0; i < cols->num_elements(); ++i) sum += cols->at(i);
  EXPECT_FLOAT_EQ(sum, 16.0f);  // Each of 4 input pixels appears 4 times.
}

// Differential testing: the GEMM path must agree with the direct loops on
// random configurations, including strides, padding, and groups.
struct ConvCase {
  int channels, size, filters, kernel, stride, pad, groups;
};

class ConvDifferentialTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvDifferentialTest, GemmMatchesDirect) {
  const ConvCase c = GetParam();
  Rng rng(c.channels * 131 + c.kernel * 17 + c.stride);
  Tensor input =
      Tensor::RandomGaussian(Shape{c.channels, c.size, c.size}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{c.filters}, &rng);
  auto direct = Conv2D(input, w, b, c.stride, c.pad, c.groups);
  auto gemm = Conv2DGemm(input, w, b, c.stride, c.pad, c.groups);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(gemm.ok());
  EXPECT_EQ(direct->shape(), gemm->shape());
  EXPECT_TRUE(direct->AllClose(*gemm, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvDifferentialTest,
    ::testing::Values(ConvCase{1, 5, 1, 3, 1, 0, 1},
                      ConvCase{3, 8, 4, 3, 1, 1, 1},
                      ConvCase{4, 9, 6, 5, 2, 2, 1},
                      ConvCase{2, 7, 2, 1, 1, 0, 1},
                      ConvCase{4, 8, 8, 3, 1, 1, 2},
                      ConvCase{6, 11, 9, 3, 2, 1, 3},
                      ConvCase{8, 6, 8, 2, 2, 0, 4},
                      ConvCase{3, 16, 12, 7, 4, 3, 1}));

// Reference-vs-optimized harness: the packed kernel must agree with the
// naive oracle across shapes chosen to hit every tiling edge — sub-tile
// matrices, exact multiples of MR/NR/KC/MC, and off-by-one tails of each.
struct GemmShape {
  int64_t m, n, k;
};

class GemmDifferentialTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmDifferentialTest, PackedMatchesReference) {
  const GemmShape s = GetParam();
  Rng rng(s.m * 7919 + s.n * 131 + s.k);
  Tensor a = Tensor::RandomGaussian(Shape{s.m, s.k}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{s.k, s.n}, &rng);
  auto ref = MatMulReference(a, b);
  auto got = MatMul(a, b);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(got.ok());
  ExpectGemmClose(*ref, *got, s.k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmDifferentialTest,
    ::testing::Values(GemmShape{1, 1, 1},       // degenerate
                      GemmShape{5, 7, 3},       // below one micro-tile
                      GemmShape{6, 16, 8},      // exactly one micro-tile
                      GemmShape{7, 17, 9},      // micro-tile + 1 tails
                      GemmShape{12, 32, 64},    // tile multiples
                      GemmShape{13, 33, 65},    // tile multiples + 1
                      GemmShape{96, 48, 256},   // exactly MC and KC
                      GemmShape{97, 49, 257},   // MC/KC + 1 tails
                      GemmShape{101, 203, 307}, // primes
                      GemmShape{1, 2048, 300},  // single row, full NC
                      GemmShape{200, 1, 300},   // single column
                      GemmShape{128, 196, 320}));

// Regression for the old kernel's `av == 0.0f` skip: 0 * inf must produce
// NaN, and NaN/Inf in either operand must propagate, exactly as the
// branch-free IEEE arithmetic dictates.
TEST(MatMulTest, NanAndInfPropagation) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();

  // Row [0, 1] x column [inf, 1]: 0 * inf = NaN, so the sum is NaN. The
  // skip-on-zero kernel returned 1 here.
  Tensor a(Shape{1, 2}, {0.0f, 1.0f});
  Tensor b(Shape{2, 1}, {inf, 1.0f});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(std::isnan(c->at(0)));

  // NaN in A poisons its whole output row, and only that row.
  Tensor a2(Shape{2, 2}, {nan, 1.0f, 1.0f, 1.0f});
  Tensor b2(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  auto c2 = MatMul(a2, b2);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(std::isnan(c2->at(0)));
  EXPECT_TRUE(std::isnan(c2->at(1)));
  EXPECT_FLOAT_EQ(c2->at(2), 4.0f);
  EXPECT_FLOAT_EQ(c2->at(3), 6.0f);

  // Inf times a positive row stays inf.
  Tensor a3(Shape{1, 1}, {2.0f});
  Tensor b3(Shape{1, 3}, {inf, -inf, 1.0f});
  auto c3 = MatMul(a3, b3);
  ASSERT_TRUE(c3.ok());
  EXPECT_TRUE(std::isinf(c3->at(0)));
  EXPECT_TRUE(std::isinf(c3->at(1)));
  EXPECT_LT(c3->at(1), 0.0f);
  EXPECT_FLOAT_EQ(c3->at(2), 2.0f);
}

// The reference oracle itself must propagate specials too (it exists to
// catch data-dependent shortcuts in the optimized path).
TEST(MatMulTest, ReferenceOracleHasNoZeroSkip) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a(Shape{1, 2}, {0.0f, 1.0f});
  Tensor b(Shape{2, 1}, {inf, 1.0f});
  auto c = MatMulReference(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(std::isnan(c->at(0)));
}

// The fused-ReLU epilogue must agree exactly with conv-then-ReLU: the
// arithmetic is identical, only the output pass is fused away.
TEST(Conv2DGemmExTest, FusedReluMatchesSeparateRelu) {
  Rng rng(42);
  Tensor input = Tensor::RandomGaussian(Shape{6, 12, 12}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{9, 2, 3, 3}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{9}, &rng);
  auto plain = Conv2DGemm(input, w, b, 1, 1, 3);
  auto fused = Conv2DGemmEx(input, w, b, 1, 1, 3, /*relu=*/true,
                            /*pool=*/nullptr);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(fused.ok());
  Tensor expected = Relu(*plain);
  ASSERT_EQ(expected.shape(), fused->shape());
  for (int64_t i = 0; i < expected.num_elements(); ++i) {
    ASSERT_EQ(expected.at(i), fused->at(i)) << "at " << i;
  }
}

// Intra-GEMM parallelism partitions work by row blocks but performs the
// same packing and micro-kernel arithmetic per block, so the result must
// be bit-identical to the serial kernel.
TEST(GemmPackedParallelTest, BitIdenticalToSerial) {
  Rng rng(7);
  const int64_t m = 256, n = 200, k = 64;
  Tensor a = Tensor::RandomGaussian(Shape{m, k}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{k, n}, &rng);
  Tensor bias = Tensor::RandomGaussian(Shape{m}, &rng);
  GemmEpilogue epilogue;
  epilogue.bias = bias.data();
  epilogue.relu = true;

  Tensor serial(Shape{m, n});
  GemmPacked(m, n, k, a.data(), k, b.data(), n, serial.mutable_data(), n,
             epilogue, &KernelScratch::ThreadLocal());

  ThreadPool pool(4);
  Tensor parallel(Shape{m, n});
  GemmPackedParallel(m, n, k, a.data(), k, b.data(), n,
                     parallel.mutable_data(), n, epilogue, &pool);
  for (int64_t i = 0; i < serial.num_elements(); ++i) {
    ASSERT_EQ(serial.at(i), parallel.at(i)) << "at " << i;
  }
}

// The zero-allocations-after-warm-up contract: once a convolution shape
// has been seen, repeating it (or running anything smaller) acquires every
// scratch buffer from the arena without touching the heap.
TEST(KernelScratchTest, NoAllocationsAfterWarmup) {
  Rng rng(3);
  Tensor input = Tensor::RandomGaussian(Shape{8, 14, 14}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 8, 3, 3}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{16}, &rng);

  // Warm-up: grows the arena to this shape's high-water mark.
  ASSERT_TRUE(Conv2DGemm(input, w, b, 1, 1, 1).ok());

  KernelScratch& scratch = KernelScratch::ThreadLocal();
  const int64_t allocs_after_warmup = scratch.allocations();
  const int64_t reuses_before = scratch.reuses();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(Conv2DGemm(input, w, b, 1, 1, 1).ok());
  }
  EXPECT_EQ(scratch.allocations(), allocs_after_warmup)
      << "warmed-up convolutions must not allocate scratch";
  EXPECT_GT(scratch.reuses(), reuses_before);
}

TEST(KernelScratchTest, GrowsGeometricallyAndAligns) {
  KernelScratch scratch;
  float* p1 = scratch.Acquire(KernelScratch::Slot::kPackA, 100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 64, 0u);
  EXPECT_EQ(scratch.allocations(), 1);
  // Same slot, smaller request: reused, not reallocated.
  scratch.Acquire(KernelScratch::Slot::kPackA, 50);
  EXPECT_EQ(scratch.allocations(), 1);
  EXPECT_EQ(scratch.reuses(), 1);
  // Larger request forces growth.
  float* p2 = scratch.Acquire(KernelScratch::Slot::kPackA, 5000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 64, 0u);
  EXPECT_EQ(scratch.allocations(), 2);
}

TEST(Conv2DGemmTest, RejectsBadConfigs) {
  Tensor input(Shape{3, 8, 8});
  Tensor w(Shape{4, 3, 3, 3});
  Tensor b(Shape{4});
  // Non-square kernel.
  EXPECT_FALSE(
      Conv2DGemm(input, Tensor(Shape{4, 3, 3, 2}), b, 1, 1).ok());
  // Groups not dividing channels.
  EXPECT_FALSE(Conv2DGemm(input, w, b, 1, 1, 2).ok());
  // Bias mismatch.
  EXPECT_FALSE(Conv2DGemm(input, w, Tensor(Shape{5}), 1, 1).ok());
}

}  // namespace
}  // namespace vista
