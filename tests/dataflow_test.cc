#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataflow/cache.h"
#include "dataflow/engine.h"
#include "dataflow/memory.h"
#include "dataflow/partition.h"
#include "dataflow/spill.h"

namespace vista::df {
namespace {

std::vector<Record> MakeRecords(int n, int features_per_record = 0,
                                double density = 1.0) {
  Rng rng(n);
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), 1.0f};
    for (int f = 0; f < features_per_record; ++f) {
      Tensor t(Shape{32});
      for (int64_t j = 0; j < 32; ++j) {
        if (rng.NextBool(density)) {
          t.set(j, static_cast<float>(rng.NextGaussian()));
        }
      }
      r.features.Append(std::move(t));
    }
    records.push_back(std::move(r));
  }
  return records;
}

// ---------------------------------------------------------------- Memory.

TEST(MemoryManagerTest, ReserveAndRelease) {
  MemoryBudgets budgets;
  budgets.user = 100;
  MemoryManager mem(budgets);
  EXPECT_TRUE(mem.TryReserve(MemoryRegion::kUser, 60).ok());
  EXPECT_EQ(mem.Used(MemoryRegion::kUser), 60);
  EXPECT_EQ(mem.Available(MemoryRegion::kUser), 40);
  auto st = mem.TryReserve(MemoryRegion::kUser, 50);
  EXPECT_TRUE(st.IsResourceExhausted());
  mem.Release(MemoryRegion::kUser, 60);
  EXPECT_EQ(mem.Used(MemoryRegion::kUser), 0);
  EXPECT_EQ(mem.Peak(MemoryRegion::kUser), 60);
}

TEST(MemoryManagerTest, UnlimitedRegion) {
  MemoryManager mem;
  EXPECT_TRUE(mem.TryReserve(MemoryRegion::kStorage, int64_t{1} << 50).ok());
}

TEST(MemoryManagerTest, ZeroAndNegativeAreNoOps) {
  MemoryBudgets budgets;
  budgets.core = 10;
  MemoryManager mem(budgets);
  EXPECT_TRUE(mem.TryReserve(MemoryRegion::kCore, 0).ok());
  EXPECT_TRUE(mem.TryReserve(MemoryRegion::kCore, -5).ok());
  EXPECT_EQ(mem.Used(MemoryRegion::kCore), 0);
}

TEST(MemoryManagerTest, ConcurrentReservations) {
  MemoryBudgets budgets;
  budgets.user = 1000;
  MemoryManager mem(budgets);
  ThreadPool pool(4);
  std::atomic<int> granted{0};
  pool.ParallelFor(100, [&](int64_t) {
    if (mem.TryReserve(MemoryRegion::kUser, 10).ok()) {
      granted.fetch_add(1);
    }
  });
  EXPECT_EQ(granted.load(), 100);
  EXPECT_EQ(mem.Used(MemoryRegion::kUser), 1000);
  EXPECT_TRUE(mem.TryReserve(MemoryRegion::kUser, 1).IsResourceExhausted());
}

// -------------------------------------------------------------- Partition.

TEST(PartitionTest, FormatsRoundTrip) {
  Partition p(MakeRecords(10, 2, 0.1));
  EXPECT_EQ(p.num_records(), 10);
  EXPECT_EQ(p.format(), PersistenceFormat::kDeserialized);
  const int64_t deser = p.memory_bytes();
  ASSERT_TRUE(p.ConvertTo(PersistenceFormat::kSerialized).ok());
  const int64_t ser = p.memory_bytes();
  EXPECT_LT(ser, deser);  // Sparse features compress.
  ASSERT_TRUE(p.ConvertTo(PersistenceFormat::kDeserialized).ok());
  auto records = p.ReadRecords();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[3].id, 3);
  EXPECT_EQ((*records)[3].features.size(), 2);
}

TEST(PartitionTest, ReadFromSerialized) {
  Partition p(MakeRecords(5, 1));
  ASSERT_TRUE(p.ConvertTo(PersistenceFormat::kSerialized).ok());
  auto records = p.ReadRecords();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 5u);
}

TEST(PartitionTest, EvictAndRestore) {
  Partition p(MakeRecords(4, 1));
  auto blob = p.ToBlob();
  ASSERT_TRUE(blob.ok());
  p.Evict();
  EXPECT_FALSE(p.resident());
  EXPECT_EQ(p.memory_bytes(), 0);
  EXPECT_FALSE(p.ReadRecords().ok());
  ASSERT_TRUE(p.Restore(*blob, PersistenceFormat::kDeserialized).ok());
  EXPECT_TRUE(p.resident());
  auto records = p.ReadRecords();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);
}

// ------------------------------------------------------------------ Spill.

TEST(SpillManagerTest, WriteReadRemove) {
  SpillManager spill("/tmp/vista_test_spill_a");
  std::vector<uint8_t> blob = {1, 2, 3, 4, 5};
  ASSERT_TRUE(spill.Write(7, blob).ok());
  EXPECT_EQ(spill.bytes_written(), 5);
  auto back = spill.Read(7);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, blob);
  EXPECT_EQ(spill.bytes_read(), 5);
  spill.Remove(7);
  EXPECT_FALSE(spill.Read(7).ok());
}

TEST(SpillManagerTest, MissingKeyIsNotFound) {
  SpillManager spill("/tmp/vista_test_spill_b");
  EXPECT_TRUE(spill.Read(99).status().IsNotFound());
}

// ------------------------------------------------------------------ Cache.

TEST(StorageCacheTest, EvictsLruToDiskUnderPressure) {
  MemoryBudgets budgets;
  budgets.storage = 2500;
  MemoryManager mem(budgets);
  SpillManager spill("/tmp/vista_test_spill_c");
  StorageCache cache(&mem, &spill, /*allow_spill=*/true);

  std::vector<std::shared_ptr<Partition>> parts;
  for (int i = 0; i < 6; ++i) {
    auto p = std::make_shared<Partition>(MakeRecords(20));
    ASSERT_TRUE(cache.Insert(p).ok()) << i;
    parts.push_back(p);
  }
  EXPECT_EQ(cache.num_managed(), 6);
  EXPECT_GT(cache.num_spilled(), 0);
  EXPECT_GT(spill.num_spills(), 0);

  // Every partition is still readable (fault-in from disk).
  for (auto& p : parts) {
    auto records = cache.ReadThrough(p);
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(records->size(), 20u);
  }
}

TEST(StorageCacheTest, MemoryOnlyModeCrashes) {
  MemoryBudgets budgets;
  budgets.storage = 2000;
  MemoryManager mem(budgets);
  SpillManager spill("/tmp/vista_test_spill_d");
  StorageCache cache(&mem, &spill, /*allow_spill=*/false);

  Status last = Status::OK();
  for (int i = 0; i < 10 && last.ok(); ++i) {
    last = cache.Insert(std::make_shared<Partition>(MakeRecords(20)));
  }
  EXPECT_TRUE(last.IsResourceExhausted());
}

TEST(StorageCacheTest, RemoveReleasesMemory) {
  MemoryBudgets budgets;
  budgets.storage = 100000;
  MemoryManager mem(budgets);
  SpillManager spill("/tmp/vista_test_spill_e");
  StorageCache cache(&mem, &spill, true);
  auto p = std::make_shared<Partition>(MakeRecords(10));
  ASSERT_TRUE(cache.Insert(p).ok());
  EXPECT_GT(mem.Used(MemoryRegion::kStorage), 0);
  cache.Remove(p);
  EXPECT_EQ(mem.Used(MemoryRegion::kStorage), 0);
}

TEST(StorageCacheTest, ExportsCountersThroughRegistry) {
  MemoryBudgets budgets;
  budgets.storage = 2500;
  MemoryManager mem(budgets);
  SpillManager spill("/tmp/vista_test_spill_f");
  obs::Registry metrics;
  StorageCache cache(&mem, &spill, /*allow_spill=*/true, nullptr, &metrics);

  std::vector<std::shared_ptr<Partition>> parts;
  for (int i = 0; i < 6; ++i) {
    auto p = std::make_shared<Partition>(MakeRecords(20));
    ASSERT_TRUE(cache.Insert(p).ok()) << i;
    parts.push_back(p);
  }
  for (auto& p : parts) {
    ASSERT_TRUE(cache.ReadThrough(p).ok());
  }

  EXPECT_EQ(metrics.counter("cache.inserts")->value(), 6);
  EXPECT_GT(metrics.counter("cache.evictions")->value(), 0);
  // Every managed read is exactly one of: resident (hit) or fault-in
  // (miss). Under this budget both cases occur.
  const int64_t hits = metrics.counter("cache.read_hits")->value();
  const int64_t misses = metrics.counter("cache.read_misses")->value();
  EXPECT_GT(misses, 0);
  EXPECT_EQ(hits + misses, 6);
  EXPECT_EQ(metrics.gauge("cache.resident_bytes")->value(),
            mem.Used(MemoryRegion::kStorage));
}

// EngineStats mirrors the same "cache.*" instruments, so engine-level and
// registry-level cache accounting cannot drift apart.
TEST(StorageCacheTest, EngineStatsMirrorsCacheCounters) {
  EngineConfig config;
  config.budgets.storage = 4000;
  Engine engine(config);
  auto table = engine.MakeTable(MakeRecords(120), 8);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      engine.Persist(&*table, PersistenceFormat::kSerialized).ok());
  for (const auto& p : table->partitions) {
    ASSERT_TRUE(engine.cache().ReadThrough(p).ok());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_inserts,
            engine.metrics().counter("cache.inserts")->value());
  EXPECT_EQ(stats.cache_read_hits + stats.cache_read_misses, 8);
  EXPECT_EQ(stats.cache_resident_bytes,
            engine.metrics().gauge("cache.resident_bytes")->value());
  EXPECT_GT(stats.cache_inserts, 0);
}

// ----------------------------------------------------------------- Engine.

EngineConfig SmallEngineConfig() {
  EngineConfig config;
  config.num_workers = 2;
  config.cpus_per_worker = 2;
  return config;
}

TEST(EngineTest, MakeTablePartitionsById) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(100), 8);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_partitions(), 8);
  EXPECT_EQ(table->num_records(), 100);
  // Same id always lands in the same partition.
  auto again = engine.MakeTable(MakeRecords(100), 8);
  ASSERT_TRUE(again.ok());
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(table->partitions[p]->num_records(),
              again->partitions[p]->num_records());
  }
}

TEST(EngineTest, MapPartitionsTransformsEveryRecord) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(50), 4);
  ASSERT_TRUE(table.ok());
  auto mapped = engine.MapPartitions(
      *table, [](std::vector<Record> records) -> Result<std::vector<Record>> {
        for (Record& r : records) r.struct_features[1] += 10.0f;
        return records;
      });
  ASSERT_TRUE(mapped.ok());
  auto collected = engine.Collect(*mapped);
  ASSERT_TRUE(collected.ok());
  ASSERT_EQ(collected->size(), 50u);
  for (const Record& r : *collected) {
    EXPECT_FLOAT_EQ(r.struct_features[1], 11.0f);
  }
}

TEST(EngineTest, MapPartitionsPropagatesErrors) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(10), 2);
  ASSERT_TRUE(table.ok());
  auto mapped = engine.MapPartitions(
      *table, [](std::vector<Record>) -> Result<std::vector<Record>> {
        return Status::Internal("udf failed");
      });
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInternal);
}

TEST(EngineTest, JoinStrategiesAgree) {
  Engine engine(SmallEngineConfig());
  // Left: ids 0..59; right: ids 30..89 -> intersection 30..59.
  std::vector<Record> left_rows = MakeRecords(60);
  std::vector<Record> right_rows;
  for (int i = 30; i < 90; ++i) {
    Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(-i)};
    right_rows.push_back(std::move(r));
  }
  auto left = engine.MakeTable(left_rows, 4);
  auto right = engine.MakeTable(right_rows, 4);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());

  for (JoinStrategy strategy :
       {JoinStrategy::kShuffleHash, JoinStrategy::kBroadcast}) {
    auto joined = engine.Join(*left, *right, strategy, 4);
    ASSERT_TRUE(joined.ok()) << JoinStrategyToString(strategy);
    auto rows = engine.Collect(*joined);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 30u) << JoinStrategyToString(strategy);
    std::sort(rows->begin(), rows->end(),
              [](const Record& a, const Record& b) { return a.id < b.id; });
    EXPECT_EQ(rows->front().id, 30);
    EXPECT_EQ(rows->back().id, 59);
    // Merge keeps left fields first, then right.
    EXPECT_FLOAT_EQ(rows->front().struct_features[0], 30.0f);
    EXPECT_FLOAT_EQ(rows->front().struct_features.back(), -30.0f);
  }
}

TEST(EngineTest, JoinMergesImageAndFeatures) {
  Engine engine(SmallEngineConfig());
  std::vector<Record> str_rows = MakeRecords(10);
  std::vector<Record> img_rows;
  for (int i = 0; i < 10; ++i) {
    Record r;
    r.id = i;
    Rng rng(i);
    r.set_image(Tensor::RandomGaussian(Shape{1, 2, 2}, &rng));
    r.features.Append(Tensor(Shape{4}));
    img_rows.push_back(std::move(r));
  }
  auto str = engine.MakeTable(str_rows, 2);
  auto img = engine.MakeTable(img_rows, 2);
  auto joined = engine.Join(*str, *img, JoinStrategy::kShuffleHash, 2);
  ASSERT_TRUE(joined.ok());
  auto rows = engine.Collect(*joined);
  ASSERT_TRUE(rows.ok());
  for (const Record& r : *rows) {
    EXPECT_TRUE(r.has_image());
    EXPECT_EQ(r.features.size(), 1);
    EXPECT_EQ(r.struct_features.size(), 2u);
  }
}

TEST(EngineTest, BroadcastJoinChargesCoreMemory) {
  EngineConfig config = SmallEngineConfig();
  config.budgets.core = 1000;  // Far too small for the broadcast table.
  Engine engine(config);
  auto left = engine.MakeTable(MakeRecords(50), 4);
  auto right = engine.MakeTable(MakeRecords(50), 4);
  auto joined = engine.Join(*left, *right, JoinStrategy::kBroadcast, 4);
  EXPECT_TRUE(joined.status().IsResourceExhausted());
  // Shuffle join splits the build side per bucket and fits.
  auto shuffled = engine.Join(*left, *right, JoinStrategy::kShuffleHash, 4);
  EXPECT_TRUE(shuffled.ok());
}

TEST(EngineTest, CollectEnforcesDriverMemory) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(100, 2), 4);
  ASSERT_TRUE(table.ok());
  auto too_small = engine.Collect(*table, 100);
  EXPECT_TRUE(too_small.status().IsResourceExhausted());
  auto fine = engine.Collect(*table, int64_t{1} << 40);
  EXPECT_TRUE(fine.ok());
}

TEST(EngineTest, PersistWithSpillsStaysReadable) {
  EngineConfig config = SmallEngineConfig();
  config.budgets.storage = 20000;
  Engine engine(config);
  auto table = engine.MakeTable(MakeRecords(200, 4, 0.8), 10);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      engine.Persist(&*table, PersistenceFormat::kDeserialized).ok());
  EXPECT_GT(engine.stats().num_spills, 0);
  auto rows = engine.Collect(*table);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 200u);
  EXPECT_GT(engine.stats().spill_bytes_read, 0);
  engine.Unpersist(&*table);
}

TEST(EngineTest, MemoryOnlyPersistCrashes) {
  EngineConfig config = SmallEngineConfig();
  config.budgets.storage = 5000;
  config.allow_spill = false;
  Engine engine(config);
  auto table = engine.MakeTable(MakeRecords(200, 4, 0.8), 10);
  ASSERT_TRUE(table.ok());
  auto st = engine.Persist(&*table, PersistenceFormat::kDeserialized);
  EXPECT_TRUE(st.IsResourceExhausted());
}

TEST(EngineTest, SerializedPersistenceShrinksSparseTables) {
  Engine engine(SmallEngineConfig());
  auto t1 = engine.MakeTable(MakeRecords(100, 4, 0.05), 4);
  auto t2 = engine.MakeTable(MakeRecords(100, 4, 0.05), 4);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(engine.Persist(&*t1, PersistenceFormat::kDeserialized).ok());
  ASSERT_TRUE(engine.Persist(&*t2, PersistenceFormat::kSerialized).ok());
  EXPECT_LT(t2->memory_bytes(), t1->memory_bytes() / 2);
}

TEST(EngineTest, ShuffleJoinCountsShuffledBytes) {
  Engine engine(SmallEngineConfig());
  auto left = engine.MakeTable(MakeRecords(50), 4);
  auto right = engine.MakeTable(MakeRecords(50), 4);
  ASSERT_TRUE(
      engine.Join(*left, *right, JoinStrategy::kShuffleHash, 4).ok());
  EXPECT_GT(engine.stats().shuffle_bytes, 0);
  EXPECT_EQ(engine.stats().broadcast_bytes, 0);
}


TEST(EngineTest, FilterKeepsMatchingRecords) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(100), 4);
  ASSERT_TRUE(table.ok());
  auto even = engine.Filter(
      *table, [](const Record& r) { return r.id % 2 == 0; });
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even->num_records(), 50);
  auto rows = engine.Collect(*even).value();
  for (const Record& r : rows) EXPECT_EQ(r.id % 2, 0);
}

TEST(EngineTest, UnionConcatenatesTables) {
  Engine engine(SmallEngineConfig());
  auto a = engine.MakeTable(MakeRecords(30), 4).value();
  std::vector<Record> more;
  for (int i = 100; i < 120; ++i) {
    Record r;
    r.id = i;
    more.push_back(std::move(r));
  }
  auto b = engine.MakeTable(more, 4).value();
  auto merged = engine.Union(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_records(), 50);
  // Mismatched partitioning is rejected.
  auto c = engine.MakeTable(MakeRecords(10), 2).value();
  EXPECT_FALSE(engine.Union(a, c).ok());
}

TEST(EngineTest, SampleIsDeterministicPerId) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(2000), 8).value();
  auto s1 = engine.Sample(table, 0.3, 5).value();
  auto s2 = engine.Sample(table, 0.3, 5).value();
  EXPECT_EQ(s1.num_records(), s2.num_records());
  EXPECT_NEAR(s1.num_records() / 2000.0, 0.3, 0.05);
  // Different seed draws a different subset.
  auto s3 = engine.Sample(table, 0.3, 6).value();
  EXPECT_NE(s1.num_records(), 0);
  // Bad fraction rejected.
  EXPECT_FALSE(engine.Sample(table, 1.5).ok());
  (void)s3;
}

TEST(EngineTest, RepartitionPreservesRecords) {
  Engine engine(SmallEngineConfig());
  auto table = engine.MakeTable(MakeRecords(77), 3);
  ASSERT_TRUE(table.ok());
  auto repartitioned = engine.Repartition(*table, 11);
  ASSERT_TRUE(repartitioned.ok());
  EXPECT_EQ(repartitioned->num_partitions(), 11);
  EXPECT_EQ(repartitioned->num_records(), 77);
}

}  // namespace
}  // namespace vista::df
