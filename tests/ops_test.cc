#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/ops.h"

namespace vista {
namespace {

TEST(Conv2DTest, IdentityKernel) {
  // A 1x1 kernel with weight 1 and bias 0 is the identity.
  Tensor input(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w(Shape{1, 1, 1, 1}, {1.0f});
  Tensor b(Shape{1}, {0.0f});
  auto out = Conv2D(input, w, b, 1, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->AllClose(input));
}

TEST(Conv2DTest, HandComputed3x3) {
  // 3x3 input, 2x2 all-ones kernel, stride 1, no pad: sliding window sums.
  Tensor input(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor b(Shape{1}, {0.0f});
  auto out = Conv2D(input, w, b, 1, 0);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out->at(0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out->at(1), 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(out->at(2), 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(out->at(3), 5 + 6 + 8 + 9);
}

TEST(Conv2DTest, BiasApplied) {
  Tensor input(Shape{1, 2, 2}, {1, 1, 1, 1});
  Tensor w = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor b(Shape{1}, {10.0f});
  auto out = Conv2D(input, w, b, 1, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 14.0f);
}

TEST(Conv2DTest, PaddingProducesSameSize) {
  Tensor input(Shape{1, 4, 4});
  Tensor w(Shape{2, 1, 3, 3});
  Tensor b(Shape{2});
  auto out = Conv2D(input, w, b, 1, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{2, 4, 4}));
}

TEST(Conv2DTest, StrideDownsamples) {
  Tensor input(Shape{3, 8, 8});
  Tensor w(Shape{4, 3, 2, 2});
  Tensor b(Shape{4});
  auto out = Conv2D(input, w, b, 2, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{4, 4, 4}));
}

TEST(Conv2DTest, MultiChannelSum) {
  // Two input channels; kernel sums both.
  Tensor input(Shape{2, 1, 1}, {3, 4});
  Tensor w = Tensor::Full(Shape{1, 2, 1, 1}, 1.0f);
  Tensor b(Shape{1});
  auto out = Conv2D(input, w, b, 1, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 7.0f);
}

TEST(Conv2DTest, LinearityInInput) {
  Rng rng(3);
  Tensor a = Tensor::RandomGaussian(Shape{2, 5, 5}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{2, 5, 5}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{3, 2, 3, 3}, &rng);
  Tensor zero_bias(Shape{3});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  auto conv_sum = Conv2D(*sum, w, zero_bias, 1, 1);
  auto conv_a = Conv2D(a, w, zero_bias, 1, 1);
  auto conv_b = Conv2D(b, w, zero_bias, 1, 1);
  ASSERT_TRUE(conv_sum.ok());
  auto expected = Add(*conv_a, *conv_b);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(conv_sum->AllClose(*expected, 1e-3f));
}

TEST(Conv2DTest, RejectsChannelMismatch) {
  Tensor input(Shape{3, 4, 4});
  Tensor w(Shape{1, 2, 3, 3});
  Tensor b(Shape{1});
  EXPECT_FALSE(Conv2D(input, w, b, 1, 0).ok());
}

TEST(Conv2DTest, RejectsBadRank) {
  Tensor input(Shape{4, 4});
  Tensor w(Shape{1, 1, 3, 3});
  Tensor b(Shape{1});
  EXPECT_FALSE(Conv2D(input, w, b, 1, 0).ok());
}

TEST(Conv2DTest, RejectsEmptyOutput) {
  Tensor input(Shape{1, 2, 2});
  Tensor w(Shape{1, 1, 5, 5});
  Tensor b(Shape{1});
  EXPECT_FALSE(Conv2D(input, w, b, 1, 0).ok());
}

TEST(MaxPoolTest, HandComputed) {
  Tensor input(Shape{1, 4, 4},
               {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  auto out = MaxPool2D(input, 2, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out->at(0), 6);
  EXPECT_FLOAT_EQ(out->at(1), 8);
  EXPECT_FLOAT_EQ(out->at(2), 14);
  EXPECT_FLOAT_EQ(out->at(3), 16);
}

TEST(MaxPoolTest, OverlappingWindows) {
  Tensor input(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto out = MaxPool2D(input, 2, 1);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out->at(0), 5);
  EXPECT_FLOAT_EQ(out->at(3), 9);
}

TEST(AvgPoolTest, HandComputed) {
  Tensor input(Shape{1, 2, 2}, {1, 2, 3, 4});
  auto out = AvgPool2D(input, 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 2.5f);
}

TEST(AvgPoolTest, PaddedWindowsUseValidCount) {
  // With padding, border windows average only in-bounds values.
  Tensor input(Shape{1, 2, 2}, {2, 2, 2, 2});
  auto out = AvgPool2D(input, 3, 1, 1);
  ASSERT_TRUE(out.ok());
  for (int64_t i = 0; i < out->num_elements(); ++i) {
    EXPECT_FLOAT_EQ(out->at(i), 2.0f);
  }
}

TEST(GlobalAvgPoolTest, PerChannelMean) {
  Tensor input(Shape{2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  auto out = GlobalAvgPool(input);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(out->at(0), 2.5f);
  EXPECT_FLOAT_EQ(out->at(1), 25.0f);
}

TEST(ReluTest, ClampsNegatives) {
  Tensor input(Shape{4}, {-1, 0, 1, -0.5f});
  Tensor out = Relu(input);
  EXPECT_FLOAT_EQ(out.at(0), 0);
  EXPECT_FLOAT_EQ(out.at(1), 0);
  EXPECT_FLOAT_EQ(out.at(2), 1);
  EXPECT_FLOAT_EQ(out.at(3), 0);
  // Input untouched.
  EXPECT_FLOAT_EQ(input.at(0), -1);
}

TEST(FullyConnectedTest, MatVec) {
  Tensor x(Shape{2}, {1, 2});
  Tensor w(Shape{3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor b(Shape{3}, {0, 0, 10});
  auto out = FullyConnected(x, w, b);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 1);
  EXPECT_FLOAT_EQ(out->at(1), 2);
  EXPECT_FLOAT_EQ(out->at(2), 13);
}

TEST(FullyConnectedTest, RejectsDimMismatch) {
  Tensor x(Shape{3});
  Tensor w(Shape{2, 2});
  Tensor b(Shape{2});
  EXPECT_FALSE(FullyConnected(x, w, b).ok());
}

TEST(BatchNormTest, ScaleAndShift) {
  Tensor input(Shape{2, 1, 2}, {1, 2, 3, 4});
  Tensor scale(Shape{2}, {2, 0.5f});
  Tensor shift(Shape{2}, {0, 1});
  auto out = BatchNormInference(input, scale, shift);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 2);
  EXPECT_FLOAT_EQ(out->at(1), 4);
  EXPECT_FLOAT_EQ(out->at(2), 2.5f);
  EXPECT_FLOAT_EQ(out->at(3), 3);
}

TEST(AddTest, Elementwise) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{2}, {10, 20});
  auto out = Add(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->at(0), 11);
  EXPECT_FLOAT_EQ(out->at(1), 22);
}

TEST(AddTest, RejectsShapeMismatch) {
  EXPECT_FALSE(Add(Tensor(Shape{2}), Tensor(Shape{3})).ok());
}

TEST(SoftmaxTest, SumsToOne) {
  Tensor x(Shape{3}, {1, 2, 3});
  auto out = Softmax(x);
  ASSERT_TRUE(out.ok());
  float sum = 0;
  for (int64_t i = 0; i < 3; ++i) sum += out->at(i);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(out->at(2), out->at(1));
  EXPECT_GT(out->at(1), out->at(0));
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor x(Shape{2}, {1000.0f, 1000.0f});
  auto out = Softmax(x);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->at(0), 0.5f, 1e-5f);
}

TEST(LrnTest, PreservesShapeAndShrinksMagnitude) {
  Rng rng(1);
  Tensor x = Tensor::RandomGaussian(Shape{8, 3, 3}, &rng, 2.0f);
  auto out = LocalResponseNorm(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), x.shape());
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    EXPECT_LE(std::fabs(out->at(i)), std::fabs(x.at(i)) + 1e-6f);
  }
}

TEST(GridMaxPoolTest, ReducesToGrid) {
  Tensor input(Shape{1, 4, 4},
               {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  auto out = GridMaxPool(input, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out->at(0), 6);
  EXPECT_FLOAT_EQ(out->at(1), 8);
  EXPECT_FLOAT_EQ(out->at(2), 14);
  EXPECT_FLOAT_EQ(out->at(3), 16);
}

TEST(GridMaxPoolTest, UnevenDivision) {
  Tensor input(Shape{1, 5, 5});
  input.set(24, 7.0f);  // Bottom-right corner.
  auto out = GridMaxPool(input, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out->at(3), 7.0f);
}

TEST(GridMaxPoolTest, SmallInputIsIdentity) {
  Tensor input(Shape{3, 1, 1}, {1, 2, 3});
  auto out = GridMaxPool(input, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->AllClose(input));
}

TEST(FlopsTest, ConvAndFcCounts) {
  // 2 FLOPs per MAC.
  EXPECT_EQ(Conv2DFlops(3, 96, 55, 55, 11), 2LL * 3 * 96 * 55 * 55 * 121);
  EXPECT_EQ(FullyConnectedFlops(9216, 4096), 2LL * 9216 * 4096);
}

// Property sweep: pooling output never exceeds the input max and conv
// shapes follow the formula across configurations.
class PoolPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PoolPropertyTest, MaxPoolBoundedByInputMax) {
  const int size = GetParam();
  Rng rng(size);
  Tensor x = Tensor::RandomGaussian(Shape{2, size, size}, &rng);
  float input_max = -1e30f;
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    input_max = std::max(input_max, x.at(i));
  }
  auto out = MaxPool2D(x, 2, 2);
  ASSERT_TRUE(out.ok());
  for (int64_t i = 0; i < out->num_elements(); ++i) {
    EXPECT_LE(out->at(i), input_max + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolPropertyTest,
                         ::testing::Values(4, 6, 8, 12, 16, 32));

}  // namespace
}  // namespace vista
