#include <gtest/gtest.h>

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/vista.h"

namespace vista {
namespace {

Vista::Options FoodsOptions(dl::KnownCnn cnn = dl::KnownCnn::kResNet50) {
  Vista::Options options;
  options.cnn = cnn;
  options.num_layers = cnn == dl::KnownCnn::kVgg16 ? 3 : 5;
  options.data.num_records = 20000;
  options.data.num_struct_features = 130;
  return options;
}

TEST(VistaApiTest, CreateRunsOptimizer) {
  auto vista = Vista::Create(FoodsOptions());
  ASSERT_TRUE(vista.ok());
  EXPECT_EQ(vista->decisions().cpu, 7);
  EXPECT_GT(vista->decisions().mem_storage, 0);
  EXPECT_EQ(vista->workload().layers.size(), 5u);
  EXPECT_EQ(vista->entry().name(), "ResNet50");
  EXPECT_GT(vista->estimates().s_single, 0);
}

TEST(VistaApiTest, PlanIsStaged) {
  auto vista = Vista::Create(FoodsOptions());
  ASSERT_TRUE(vista.ok());
  auto plan = vista->Plan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->logical, LogicalPlan::kStaged);
}

TEST(VistaApiTest, InfeasibleEnvironmentIsReported) {
  Vista::Options options = FoodsOptions(dl::KnownCnn::kVgg16);
  options.env.node_memory_bytes = GiB(8);
  auto vista = Vista::Create(options);
  ASSERT_FALSE(vista.ok());
  EXPECT_TRUE(vista.status().IsResourceExhausted());
  EXPECT_NE(vista.status().message().find("provision"), std::string::npos);
}

TEST(VistaApiTest, ExecuteSimulatedOnBothPdSystems) {
  auto vista = Vista::Create(FoodsOptions());
  ASSERT_TRUE(vista.ok());
  for (PdSystem pd : {PdSystem::kSparkLike, PdSystem::kIgniteLike}) {
    auto result = vista->ExecuteSimulated(pd, sim::NodeResources{});
    ASSERT_TRUE(result.ok()) << PdSystemToString(pd);
    EXPECT_FALSE(result->crashed()) << PdSystemToString(pd);
    EXPECT_GT(result->total_seconds, 0);
    EXPECT_FALSE(result->stages.empty());
  }
}

TEST(VistaApiTest, ExecuteRealWithMicroModel) {
  Vista::Options options = FoodsOptions(dl::KnownCnn::kAlexNet);
  options.num_layers = 3;
  options.training_iterations = 4;
  auto vista = Vista::Create(options);
  ASSERT_TRUE(vista.ok());

  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  df::Engine engine(engine_config);
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 5);
  ASSERT_TRUE(model.ok());

  feat::MultimodalDatasetSpec spec;
  spec.num_records = 200;
  spec.num_struct_features = 10;
  spec.image_size = 32;
  auto data = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  auto t_str = engine.MakeTable(std::move(data->t_str), 4);
  auto t_img = engine.MakeTable(std::move(data->t_img), 4);
  ASSERT_TRUE(t_str.ok());
  ASSERT_TRUE(t_img.ok());

  auto result = vista->ExecuteReal(&engine, &*model, *t_str, *t_img, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->per_layer.size(), 3u);
  for (const auto& layer : result->per_layer) {
    EXPECT_GT(layer.test_metrics.total(), 0);
  }
}

TEST(VistaApiTest, MlpWorkloadAccountsModelInDlMemory) {
  Vista::Options options = FoodsOptions(dl::KnownCnn::kAlexNet);
  options.num_layers = 4;
  options.model = DownstreamModel::kMlp;
  auto vista = Vista::Create(options);
  ASSERT_TRUE(vista.ok());
  // DL execution memory covers max(CNN replicas, MLP replicas).
  EXPECT_GE(vista->decisions().mem_dl,
            vista->decisions().cpu *
                vista->entry().memory.runtime_cpu_bytes);
}

TEST(VistaApiTest, DecisionsRespectGpuEnvironment) {
  Vista::Options options = FoodsOptions(dl::KnownCnn::kVgg16);
  options.env.gpu_memory_bytes = GiB(12);
  auto vista = Vista::Create(options);
  ASSERT_TRUE(vista.ok());
  EXPECT_LT(vista->decisions().cpu *
                vista->entry().memory.runtime_gpu_bytes,
            GiB(12));
}


TEST(VistaApiTest, ExplainReportsEverything) {
  auto vista = Vista::Create(FoodsOptions());
  ASSERT_TRUE(vista.ok());
  auto report = vista->Explain();
  ASSERT_TRUE(report.ok());
  // The report must cover workload, estimates, decisions, plan, timeline.
  for (const char* needle :
       {"Vista EXPLAIN", "ResNet50", "conv4_6", "size estimates",
        "s_single", "optimizer decisions", "cpu=7", "Staged/AJ",
        "predicted timeline", "predicted total"}) {
    EXPECT_NE(report->find(needle), std::string::npos) << needle;
  }
}

TEST(VistaApiTest, ExplainPredictsSpillsWhenOversized) {
  Vista::Options options = FoodsOptions();
  options.data.num_records = 200000;  // Amazon scale.
  options.data.num_struct_features = 200;
  auto vista = Vista::Create(options);
  ASSERT_TRUE(vista.ok());
  auto report = vista->Explain();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("spilling"), std::string::npos);
}

}  // namespace
}  // namespace vista
