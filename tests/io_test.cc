#include <algorithm>
#include <cstdio>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataflow/io.h"

namespace vista::df {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return "/tmp/vista_io_test_" + name;
  }
  void TearDown() override {
    for (const auto& f : files_) std::remove(f.c_str());
  }
  std::string Track(const std::string& name) {
    files_.push_back(Path(name));
    return files_.back();
  }
  std::vector<std::string> files_;
};

std::vector<Record> StructRecords(int n) {
  std::vector<Record> records;
  for (int i = 0; i < n; ++i) {
    Record r;
    r.id = i * 3;
    r.struct_features = {static_cast<float>(i), 0.5f, -2.25f};
    records.push_back(std::move(r));
  }
  return records;
}

TEST_F(IoTest, CsvRoundTrip) {
  const std::string path = Track("a.csv");
  auto records = StructRecords(20);
  ASSERT_TRUE(WriteStructCsv(records, path).ok());
  auto back = ReadStructCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ((*back)[i].id, records[i].id);
    EXPECT_EQ((*back)[i].struct_features, records[i].struct_features);
  }
}

TEST_F(IoTest, CsvRejectsTensorFields) {
  Record r;
  r.id = 1;
  r.features.Append(Tensor(Shape{3}));
  EXPECT_FALSE(WriteStructCsv({r}, Track("b.csv")).ok());
}

TEST_F(IoTest, CsvRejectsRaggedRows) {
  Record a, b;
  a.id = 1;
  a.struct_features = {1, 2};
  b.id = 2;
  b.struct_features = {1};
  EXPECT_FALSE(WriteStructCsv({a, b}, Track("c.csv")).ok());
}

TEST_F(IoTest, CsvRejectsGarbage) {
  const std::string path = Track("d.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("id,f0\n7,not_a_number\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadStructCsv(path).ok());
  EXPECT_FALSE(ReadStructCsv(Path("missing.csv")).ok());
}

TEST_F(IoTest, TableFileRoundTripWithTensors) {
  const std::string path = Track("t.vtbl");
  EngineConfig config;
  Engine engine(config);
  Rng rng(1);
  std::vector<Record> records;
  for (int i = 0; i < 40; ++i) {
    Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i)};
    r.set_image(Tensor::RandomGaussian(Shape{3, 4, 4}, &rng));
    Tensor sparse(Shape{64});
    sparse.set(i % 64, 1.0f);
    r.features.Append(std::move(sparse));
    records.push_back(std::move(r));
  }
  auto table = engine.MakeTable(records, 5);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(WriteTableFile(*table, path).ok());

  auto back = ReadTableFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_partitions(), 5);
  EXPECT_EQ(back->num_records(), 40);
  auto orig_rows = engine.Collect(*table);
  auto back_rows = engine.Collect(*back);
  ASSERT_TRUE(orig_rows.ok());
  ASSERT_TRUE(back_rows.ok());
  auto by_id = [](const Record& a, const Record& b) { return a.id < b.id; };
  std::sort(orig_rows->begin(), orig_rows->end(), by_id);
  std::sort(back_rows->begin(), back_rows->end(), by_id);
  for (size_t i = 0; i < orig_rows->size(); ++i) {
    EXPECT_TRUE((*back_rows)[i].image().AllClose((*orig_rows)[i].image()));
    EXPECT_TRUE((*back_rows)[i].features.at(0).AllClose(
        (*orig_rows)[i].features.at(0)));
  }
}

TEST_F(IoTest, TableFileRejectsCorruptHeader) {
  const std::string path = Track("bad.vtbl");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTVISTA", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadTableFile(path).ok());
}

TEST_F(IoTest, TableFileRejectsTruncation) {
  const std::string path = Track("trunc.vtbl");
  Engine engine{EngineConfig{}};
  auto table = engine.MakeTable(StructRecords(10), 2);
  ASSERT_TRUE(WriteTableFile(*table, path).ok());
  // Truncate the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(ReadTableFile(path).ok());
}

TEST_F(IoTest, PpmRoundTrip) {
  const std::string path = Track("img.ppm");
  Tensor image(Shape{3, 4, 6});
  float* data = image.mutable_data();
  for (int64_t i = 0; i < image.num_elements(); ++i) {
    data[i] = static_cast<float>(i % 17) / 16.0f;
  }
  ASSERT_TRUE(WriteImagePpm(image, path).ok());
  auto back = ReadImagePpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), image.shape());
  // 8-bit quantization: within 1/255.
  EXPECT_TRUE(back->AllClose(image, 1.0f / 254.0f));
}

TEST_F(IoTest, PpmGrayscaleReplicates) {
  const std::string path = Track("gray.ppm");
  Tensor gray = Tensor::Full(Shape{1, 2, 2}, 0.5f);
  ASSERT_TRUE(WriteImagePpm(gray, path).ok());
  auto back = ReadImagePpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), (Shape{3, 2, 2}));
  EXPECT_NEAR(back->at3(0, 0, 0), back->at3(2, 0, 0), 1e-6f);
}

TEST_F(IoTest, PpmRejectsBadShapes) {
  EXPECT_FALSE(WriteImagePpm(Tensor(Shape{2, 4, 4}), Track("x.ppm")).ok());
  EXPECT_FALSE(WriteImagePpm(Tensor(Shape{16}), Track("y.ppm")).ok());
}

}  // namespace
}  // namespace vista::df
