#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace vista::sim {
namespace {

NodeResources DefaultNode() { return NodeResources{}; }

WorkerMemoryModel RoomyMemory() {
  WorkerMemoryModel m;
  m.cpus = 4;
  return m;
}

SimStage ComputeStage(double total_gflops, int tasks, bool uses_dl = false) {
  SimStage stage;
  stage.name = "compute";
  stage.uses_dl = uses_dl;
  stage.tasks.resize(tasks);
  for (auto& t : stage.tasks) {
    t.flops = total_gflops * 1e9 / tasks;
  }
  return stage;
}

TEST(ClusterSimTest, DlCoreScalingSaturates) {
  const double s1 = ClusterSim::DlCoreScaling(1);
  const double s4 = ClusterSim::DlCoreScaling(4);
  const double s8 = ClusterSim::DlCoreScaling(8);
  EXPECT_LT(s1, s4);
  EXPECT_LT(s4, s8);
  EXPECT_NEAR(s8, 1.0, 1e-9);
  // Plateau: going 4 -> 8 gains much less than 1 -> 4.
  EXPECT_GT(s4 / s1, 2.0);
  EXPECT_LT(s8 / s4, 1.3);
}

TEST(ClusterSimTest, MoreNodesReduceComputeTime) {
  std::vector<SimStage> stages = {ComputeStage(1000.0, 64, true)};
  ClusterSim one(1, DefaultNode(), RoomyMemory());
  ClusterSim eight(8, DefaultNode(), RoomyMemory());
  auto r1 = one.Run(stages);
  auto r8 = eight.Run(stages);
  ASSERT_FALSE(r1.crashed());
  ASSERT_FALSE(r8.crashed());
  EXPECT_GT(r1.total_seconds, r8.total_seconds * 6);
}

TEST(ClusterSimTest, DlStagesSaturateWithCpus) {
  std::vector<SimStage> stages = {ComputeStage(1000.0, 64, true)};
  WorkerMemoryModel m1 = RoomyMemory();
  m1.cpus = 1;
  WorkerMemoryModel m4 = RoomyMemory();
  m4.cpus = 4;
  WorkerMemoryModel m8 = RoomyMemory();
  m8.cpus = 8;
  auto t = [&](const WorkerMemoryModel& m) {
    ClusterSim sim(2, DefaultNode(), m);
    return sim.Run(stages).total_seconds;
  };
  EXPECT_GT(t(m1), t(m4));
  EXPECT_GT(t(m4), t(m8));
  EXPECT_LT(t(m4) / t(m8), 1.5);  // Plateau.
}

TEST(ClusterSimTest, DiskAndNetworkCosts) {
  SimStage stage;
  stage.name = "io";
  stage.tasks.resize(8);
  for (auto& t : stage.tasks) {
    t.disk_read_bytes = GiB(1) / 8;
    t.shuffle_bytes = GiB(1) / 8;
  }
  ClusterSim sim(1, DefaultNode(), RoomyMemory());
  auto r = sim.Run({stage});
  ASSERT_FALSE(r.crashed());
  // 1 GiB at 140 MB/s disk + 1 GiB at 110 MB/s network ~= 17.4 s.
  EXPECT_NEAR(r.total_seconds, GiB(1) / (140e6) + GiB(1) / (110e6), 2.0);
}

TEST(ClusterSimTest, DlMemoryBlowupCrashes) {
  SimStage stage = ComputeStage(10, 8, /*uses_dl=*/true);
  stage.dl_mem_per_thread = GiB(6);
  WorkerMemoryModel m = RoomyMemory();
  m.cpus = 7;  // 42 GB of replicas on a 32 GB node.
  ClusterSim sim(2, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kDlMemoryBlowup);
  EXPECT_TRUE(r.status.IsResourceExhausted());
}

TEST(ClusterSimTest, SameStageFitsWithFewerThreads) {
  SimStage stage = ComputeStage(10, 8, true);
  stage.dl_mem_per_thread = GiB(6);
  WorkerMemoryModel m = RoomyMemory();
  m.cpus = 1;
  ClusterSim sim(2, DefaultNode(), m);
  EXPECT_FALSE(sim.Run({stage}).crashed());
}

TEST(ClusterSimTest, InsufficientUserMemoryCrashes) {
  SimStage stage = ComputeStage(10, 8);
  stage.user_mem_per_task = GiB(4);
  WorkerMemoryModel m = RoomyMemory();
  m.user_bytes = GiB(10);
  m.cpus = 4;  // Needs 16 GB of user memory.
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kInsufficientUserMemory);
}

TEST(ClusterSimTest, OversizedPartitionsCrashWithoutEvictableStorage) {
  SimStage stage = ComputeStage(10, 8);
  stage.core_mem_per_task = GiB(4);
  WorkerMemoryModel m = RoomyMemory();
  m.core_bytes = GiB(2);
  m.cpus = 4;
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kOversizedPartitions);
}

TEST(ClusterSimTest, CoreBorrowsFromStorageByEvicting) {
  // Cache some data first, then demand Core beyond its budget: Spark-like
  // borrowing evicts cached partitions (spills) instead of crashing.
  SimStage cache_stage;
  cache_stage.name = "cache";
  cache_stage.cache_insert_bytes = GiB(8);
  SimStage join_stage = ComputeStage(10, 8);
  join_stage.core_mem_per_task = GiB(1);  // 4 GB needed, 2.4 GB budget.
  WorkerMemoryModel m = RoomyMemory();
  m.cpus = 4;
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({cache_stage, join_stage});
  EXPECT_FALSE(r.crashed());
  EXPECT_GT(r.spill_bytes_written, 0);
}

TEST(ClusterSimTest, StaticOffheapCannotBorrow) {
  SimStage stage = ComputeStage(10, 8);
  stage.core_mem_per_task = GiB(1);
  WorkerMemoryModel m = RoomyMemory();
  m.cpus = 4;
  m.offheap_static = true;
  m.core_bytes = GiB(1);
  m.user_bytes = GiB(1);
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kOversizedPartitions);
}

TEST(ClusterSimTest, DriverMemoryCrash) {
  SimStage stage = ComputeStage(1, 4);
  stage.driver_collect_bytes = GiB(16);
  WorkerMemoryModel m = RoomyMemory();
  m.driver_memory_bytes = GiB(8);
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kInsufficientDriverMemory);
}

TEST(ClusterSimTest, StorageOverflowSpillsWhenAllowed) {
  SimStage stage;
  stage.name = "cache-too-much";
  stage.cache_insert_bytes = GiB(100);
  WorkerMemoryModel m = RoomyMemory();
  m.storage_bytes = GiB(10);
  ClusterSim sim(2, DefaultNode(), m);  // 20 GB capacity.
  auto r = sim.Run({stage});
  ASSERT_FALSE(r.crashed());
  EXPECT_EQ(r.spill_bytes_written, GiB(80));
  EXPECT_GT(r.total_seconds, 10.0);  // 40 GB per node at ~110 MB/s.
}

TEST(ClusterSimTest, StorageOverflowCrashesMemoryOnly) {
  SimStage stage;
  stage.name = "cache-too-much";
  stage.cache_insert_bytes = GiB(100);
  WorkerMemoryModel m = RoomyMemory();
  m.storage_bytes = GiB(10);
  m.allow_disk_spill = false;
  ClusterSim sim(2, DefaultNode(), m);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kStorageExhausted);
}

TEST(ClusterSimTest, SpilledCacheReadsPayDiskCosts) {
  SimStage fill;
  fill.name = "fill";
  fill.cache_insert_bytes = GiB(30);
  SimStage read;
  read.name = "read";
  read.cache_read_bytes = GiB(30);
  read.tasks.resize(4);
  WorkerMemoryModel m = RoomyMemory();
  m.storage_bytes = GiB(10);
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({fill, read});
  ASSERT_FALSE(r.crashed());
  EXPECT_GT(r.spill_bytes_read, GiB(15));
  // Versus a run whose cache fits: far less time.
  WorkerMemoryModel roomy = RoomyMemory();
  roomy.storage_bytes = GiB(64);
  ClusterSim fits(1, DefaultNode(), roomy);
  auto r2 = fits.Run({fill, read});
  EXPECT_LT(r2.total_seconds, r.total_seconds / 2);
}

TEST(ClusterSimTest, ReleaseFreesStorage) {
  SimStage fill;
  fill.name = "fill";
  fill.cache_insert_bytes = GiB(9);
  SimStage release;
  release.name = "release";
  release.cache_release_bytes = GiB(9);
  SimStage fill2 = fill;
  fill2.name = "fill2";
  WorkerMemoryModel m = RoomyMemory();
  m.storage_bytes = GiB(10);
  ClusterSim sim(1, DefaultNode(), m);
  auto r = sim.Run({fill, release, fill2});
  ASSERT_FALSE(r.crashed());
  EXPECT_EQ(r.spill_bytes_written, 0);
}

TEST(ClusterSimTest, ManyTasksIncurSchedulingOverhead) {
  // Past ~2000 tasks, per-task overheads jump (Section 5.3's np effect).
  auto runtime_with_tasks = [&](int tasks) {
    ClusterSim sim(8, DefaultNode(), RoomyMemory());
    return sim.Run({ComputeStage(0.001, tasks)}).total_seconds;
  };
  const double few = runtime_with_tasks(256);
  const double many = runtime_with_tasks(4096);
  EXPECT_GT(many, few * 5);
}

TEST(ClusterSimTest, GpuConstraintEnforced) {
  NodeResources node = DefaultNode();
  node.gpu_memory_bytes = GiB(12);
  SimStage stage = ComputeStage(100, 8, true);
  stage.dl_mem_per_thread = MiB(500);
  stage.dl_gpu_mem_per_thread = GiB(4);
  WorkerMemoryModel m = RoomyMemory();
  m.cpus = 5;  // 20 GB of GPU demand on a 12 GB card.
  ClusterSim sim(1, node, m, /*use_gpu=*/true);
  auto r = sim.Run({stage});
  EXPECT_TRUE(r.crashed());
  EXPECT_EQ(r.crash, CrashScenario::kDlMemoryBlowup);
  m.cpus = 2;
  ClusterSim fits(1, node, m, true);
  EXPECT_FALSE(fits.Run({stage}).crashed());
}

TEST(ClusterSimTest, GpuFasterThanCpuForInference) {
  NodeResources node = DefaultNode();
  node.gpu_memory_bytes = GiB(12);
  SimStage stage = ComputeStage(5000, 64, true);
  stage.dl_gpu_mem_per_thread = GiB(1);
  WorkerMemoryModel m = RoomyMemory();
  ClusterSim cpu(1, node, m, false);
  ClusterSim gpu(1, node, m, true);
  EXPECT_GT(cpu.Run({stage}).total_seconds,
            gpu.Run({stage}).total_seconds * 3);
}

TEST(ClusterSimTest, CrashReportsStageName) {
  SimStage ok = ComputeStage(1, 4);
  ok.name = "fine";
  SimStage bad = ComputeStage(1, 4);
  bad.name = "the-culprit";
  bad.user_mem_per_task = GiB(100);
  ClusterSim sim(1, DefaultNode(), RoomyMemory());
  auto r = sim.Run({ok, bad});
  ASSERT_TRUE(r.crashed());
  EXPECT_EQ(r.crashed_stage, "the-culprit");
  EXPECT_EQ(r.stages.size(), 2u);
}

}  // namespace
}  // namespace vista::sim
