#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "dl/cnn.h"
#include "dl/model_zoo.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/scratch.h"

namespace vista {
namespace {

// ------------------------------------------------------- rounding properties

TEST(SaturateRoundTest, RoundsHalfToEven) {
  EXPECT_EQ(SaturateRoundToInt8(0.5f), 0);
  EXPECT_EQ(SaturateRoundToInt8(1.5f), 2);
  EXPECT_EQ(SaturateRoundToInt8(2.5f), 2);
  EXPECT_EQ(SaturateRoundToInt8(3.5f), 4);
  EXPECT_EQ(SaturateRoundToInt8(-0.5f), 0);
  EXPECT_EQ(SaturateRoundToInt8(-1.5f), -2);
  EXPECT_EQ(SaturateRoundToInt8(-2.5f), -2);
  EXPECT_EQ(SaturateRoundToInt8(0.49f), 0);
  EXPECT_EQ(SaturateRoundToInt8(0.51f), 1);
  EXPECT_EQ(SaturateRoundToInt8(126.5f), 126);
}

TEST(SaturateRoundTest, SaturatesToNarrowRange) {
  EXPECT_EQ(SaturateRoundToInt8(127.0f), 127);
  EXPECT_EQ(SaturateRoundToInt8(127.4f), 127);
  EXPECT_EQ(SaturateRoundToInt8(1e9f), 127);
  EXPECT_EQ(SaturateRoundToInt8(std::numeric_limits<float>::infinity()),
            127);
  // The -128 code is never produced: the narrow range is symmetric.
  EXPECT_EQ(SaturateRoundToInt8(-127.0f), -127);
  EXPECT_EQ(SaturateRoundToInt8(-127.6f), -127);
  EXPECT_EQ(SaturateRoundToInt8(-1e9f), -127);
  EXPECT_EQ(SaturateRoundToInt8(-std::numeric_limits<float>::infinity()),
            -127);
}

TEST(SaturateRoundTest, NanMapsToZero) {
  EXPECT_EQ(SaturateRoundToInt8(std::numeric_limits<float>::quiet_NaN()), 0);
}

TEST(SymmetricScaleTest, GuardsDegenerateInputs) {
  EXPECT_FLOAT_EQ(SymmetricScale(127.0f), 1.0f);
  EXPECT_FLOAT_EQ(SymmetricScale(0.0f), 0.0f);
  EXPECT_FLOAT_EQ(SymmetricScale(-1.0f), 0.0f);
  EXPECT_FLOAT_EQ(SymmetricScale(std::numeric_limits<float>::infinity()),
                  0.0f);
  EXPECT_FLOAT_EQ(SymmetricScale(std::numeric_limits<float>::quiet_NaN()),
                  0.0f);
}

TEST(QuantizeSymmetricTest, ZeroScaleWritesZeros) {
  const float src[4] = {1.0f, -2.0f, 3.0f, 1e9f};
  int8_t dst[4] = {9, 9, 9, 9};
  QuantizeSymmetric(src, 4, 0.0f, dst);
  for (int8_t v : dst) EXPECT_EQ(v, 0);
  QuantizeSymmetric(src, 4, -1.0f, dst);
  for (int8_t v : dst) EXPECT_EQ(v, 0);
}

TEST(QuantizeSymmetricTest, RoundTripErrorBoundedByHalfScale) {
  Rng rng(7);
  std::vector<float> src(1000);
  for (float& v : src) {
    v = static_cast<float>(rng.NextDouble(-3.0, 3.0));
  }
  const float scale = SymmetricScale(MaxAbs(src.data(), src.size()));
  ASSERT_GT(scale, 0.0f);
  std::vector<int8_t> q(src.size());
  QuantizeSymmetric(src.data(), src.size(), scale, q.data());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
    // Dequantized error is at most half a quantization step.
    EXPECT_LE(std::abs(static_cast<float>(q[i]) * scale - src[i]),
              scale * 0.5f + 1e-6f);
  }
}

TEST(QuantizeWeightsTest, PerChannelScalesAndCodes) {
  // Two output channels with very different ranges: per-channel scales
  // keep the small channel's resolution.
  Tensor w(Shape{2, 4}, {10.0f, -20.0f, 5.0f, 0.0f,  //
                         0.1f, -0.05f, 0.025f, 0.0f});
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  ASSERT_EQ(qw->scales.size(), 2u);
  EXPECT_FLOAT_EQ(qw->scales[0], 20.0f / 127.0f);
  EXPECT_FLOAT_EQ(qw->scales[1], 0.1f / 127.0f);
  EXPECT_EQ(qw->data[1], -127);  // Channel max hits the range edge.
  EXPECT_EQ(qw->data[4], 127);
  EXPECT_EQ(qw->out_channels(), 2);
  EXPECT_EQ(qw->inner(), 4);
}

TEST(QuantizeWeightsTest, AllZeroChannelGetsZeroScale) {
  Tensor w(Shape{2, 3}, {0, 0, 0, 1, 2, 3});
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  EXPECT_FLOAT_EQ(qw->scales[0], 0.0f);
  EXPECT_EQ(qw->data[0], 0);
  EXPECT_GT(qw->scales[1], 0.0f);
}

TEST(QuantizeWeightsTest, RejectsRankBelowTwo) {
  EXPECT_FALSE(QuantizeWeightsPerChannel(Tensor(Shape{5})).ok());
}

// ------------------------------------------------- int8 kernel differential

/// Exact integer oracle: C = A_q * B_q in int64, no blocking, no packing.
std::vector<int32_t> Int8Reference(int64_t m, int64_t n, int64_t k,
                                   const std::vector<int8_t>& a,
                                   const std::vector<int8_t>& b) {
  std::vector<int32_t> c(m * n, 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int64_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int64_t>(a[i * k + p]) *
               static_cast<int64_t>(b[p * n + j]);
      }
      c[i * n + j] = static_cast<int32_t>(acc);
    }
  }
  return c;
}

std::vector<int8_t> RandomInt8(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<int8_t> out(count);
  for (int8_t& v : out) {
    v = static_cast<int8_t>(static_cast<int64_t>(rng.NextUint64(255)) - 127);
  }
  return out;
}

class GemmInt8DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmInt8DifferentialTest, BitExactAgainstIntegerOracle) {
  const auto [m, n, k] = GetParam();
  const std::vector<int8_t> a = RandomInt8(m * k, 11 + m);
  const std::vector<int8_t> b = RandomInt8(k * n, 23 + n);
  const std::vector<int32_t> ref = Int8Reference(m, n, k, a, b);

  // Null scale = raw integer accumulators, bit-cast into the float buffer.
  std::vector<float> c(m * n, -1.0f);
  GemmPackedInt8(m, n, k, a.data(), k, b.data(), n, c.data(), n,
                 GemmInt8Epilogue{}, &KernelScratch::ThreadLocal());
  for (int64_t i = 0; i < m * n; ++i) {
    int32_t got = 0;
    std::memcpy(&got, &c[i], sizeof(got));
    ASSERT_EQ(got, ref[i]) << "at " << i << " (m=" << m << " n=" << n
                           << " k=" << k << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmInt8DifferentialTest,
    ::testing::Values(
        std::make_tuple(1, 1, 1), std::make_tuple(5, 17, 3),
        std::make_tuple(6, 16, 4),  // Exactly one full micro-tile.
        std::make_tuple(7, 33, 129), std::make_tuple(13, 40, 67),
        std::make_tuple(96, 64, 256),
        // K crosses the int8 panel boundary (kGemmKcInt8 = 1024) with
        // remainders in every dimension.
        std::make_tuple(97, 65, 1027)));

TEST(GemmInt8Test, ParallelBitIdenticalToSerial) {
  const int64_t m = 200, n = 80, k = 300;
  const std::vector<int8_t> a = RandomInt8(m * k, 5);
  const std::vector<int8_t> b = RandomInt8(k * n, 6);
  std::vector<float> scale(m, 0.01f);

  GemmInt8Epilogue ep;
  ep.scale = scale.data();
  std::vector<float> serial(m * n), parallel(m * n);
  GemmPackedInt8(m, n, k, a.data(), k, b.data(), n, serial.data(), n, ep,
                 &KernelScratch::ThreadLocal());
  ThreadPool pool(4);
  GemmPackedInt8Parallel(m, n, k, a.data(), k, b.data(), n, parallel.data(),
                         n, ep, &pool);
  for (int64_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "at " << i;
  }
}

TEST(GemmInt8Test, EpilogueAppliesScaleBiasRelu) {
  // 1x2 result with known integer accumulators: a = [2, -3], columns of b
  // chosen so acc0 = 2*10 + -3*4 = 8, acc1 = 2*1 + -3*2 = -4.
  const std::vector<int8_t> a = {2, -3};
  const std::vector<int8_t> b = {10, 1, 4, 2};
  std::vector<float> scale = {0.5f};
  std::vector<float> bias = {1.0f};

  GemmInt8Epilogue ep;
  ep.scale = scale.data();
  ep.bias = bias.data();
  std::vector<float> c(2);
  GemmPackedInt8(1, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2, ep,
                 &KernelScratch::ThreadLocal());
  EXPECT_FLOAT_EQ(c[0], 8 * 0.5f + 1.0f);
  EXPECT_FLOAT_EQ(c[1], -4 * 0.5f + 1.0f);

  ep.relu = true;
  GemmPackedInt8(1, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2, ep,
                 &KernelScratch::ThreadLocal());
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);  // max(0, -1).
}

TEST(GemmInt8Test, EpilogueRequantizesToInt8) {
  const std::vector<int8_t> a = {2, -3};
  const std::vector<int8_t> b = {10, 1, 4, 2};
  std::vector<float> scale = {0.5f};

  GemmInt8Epilogue ep;
  ep.scale = scale.data();
  std::vector<float> c(2);
  std::vector<int8_t> c8(2, 99);
  ep.c8 = c8.data();
  ep.ldc8 = 2;
  ep.out_scale = 0.25f;
  GemmPackedInt8(1, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2, ep,
                 &KernelScratch::ThreadLocal());
  // y = {4.0, -2.0}; /0.25 -> {16, -8}.
  EXPECT_EQ(c8[0], 16);
  EXPECT_EQ(c8[1], -8);

  // Zero out_scale guard: writes zeros instead of dividing.
  ep.out_scale = 0.0f;
  GemmPackedInt8(1, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2, ep,
                 &KernelScratch::ThreadLocal());
  EXPECT_EQ(c8[0], 0);
  EXPECT_EQ(c8[1], 0);
}

TEST(GemmInt8Test, OpsCounterAdvancesAndKernelIsNamed) {
  const int64_t before = GemmInt8OpsTotal();
  const std::vector<int8_t> a = RandomInt8(6 * 16, 1);
  const std::vector<int8_t> b = RandomInt8(16 * 16, 2);
  std::vector<float> c(6 * 16);
  GemmPackedInt8(6, 16, 16, a.data(), 16, b.data(), 16, c.data(), 16,
                 GemmInt8Epilogue{}, &KernelScratch::ThreadLocal());
  EXPECT_EQ(GemmInt8OpsTotal() - before, 2 * 6 * 16 * 16);
  const std::string name = GemmInt8KernelName();
  EXPECT_TRUE(name == "avx512vnni" || name == "avxvnni" || name == "scalar")
      << name;
}

// ----------------------------------------------- quantized conv lowering

/// Builds a tensor of exact multiples of `step` with codes in [-127, 127]
/// and element 0 pinned to +127*step, so SymmetricScale(MaxAbs(t))
/// recovers exactly `step` and quantization is lossless. With
/// power-of-two steps every partial product and sum below 2^24 is exactly
/// representable in fp32, so the int8 and fp32 paths must agree exactly.
Tensor GridAligned(const Shape& shape, float step, uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    const int code = static_cast<int>(rng.NextUint64(255)) - 127;
    t.set(i, static_cast<float>(code) * step);
  }
  t.set(0, 127.0f * step);
  return t;
}

/// GridAligned for weights: pins every output channel's first element to
/// +127*step so QuantizeWeightsPerChannel recovers `step` per channel.
Tensor GridAlignedWeights(const Shape& shape, float step, uint64_t seed) {
  Tensor t = GridAligned(shape, step, seed);
  const int64_t inner = t.num_elements() / shape.dim(0);
  for (int64_t oc = 0; oc < shape.dim(0); ++oc) {
    t.set(oc * inner, 127.0f * step);
  }
  return t;
}

void ExpectClose(const Tensor& ref, const Tensor& got, float tol) {
  ASSERT_EQ(ref.shape(), got.shape());
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    ASSERT_LE(std::abs(ref.at(i) - got.at(i)),
              tol + 1e-4f * std::abs(ref.at(i)))
        << "at " << i << ": ref=" << ref.at(i) << " got=" << got.at(i);
  }
}

// Power-of-two quantization steps: the pinned +127*step element makes the
// derived scales recover the generation step exactly, and every partial
// product/sum is an integer multiple of 2^-12 below 2^24, hence exactly
// representable in fp32 — both paths must agree to float ULP.
TEST(Conv2DGemmInt8Test, GridAlignedInputMatchesFp32Exactly) {
  const float act_step = 0.03125f;   // 2^-5
  const float w_step = 0.0078125f;   // 2^-7
  Tensor input = GridAligned(Shape{4, 9, 9}, act_step, 3);
  Tensor w = GridAlignedWeights(Shape{6, 4, 3, 3}, w_step, 4);
  Tensor bias = GridAligned(Shape{6}, 0.125f, 5);

  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  for (float s : qw->scales) ASSERT_EQ(s, w_step);
  const float in_scale = SymmetricScale(MaxAbs(input.data(),
                                               input.num_elements()));
  ASSERT_EQ(in_scale, act_step);
  auto ref = Conv2DGemmEx(input, w, bias, 1, 1, 1, false, nullptr);
  ASSERT_TRUE(ref.ok());
  auto got = Conv2DGemmInt8(input, *qw, bias, 1, 1, 1, false, in_scale,
                            nullptr);
  ASSERT_TRUE(got.ok());
  ExpectClose(*ref, *got, 1e-6f);
}

TEST(Conv2DGemmInt8Test, GroupedConvMatchesFp32OnGrid) {
  const float act_step = 0.0625f;      // 2^-4
  const float w_step = 0.00390625f;    // 2^-8
  Tensor input = GridAligned(Shape{6, 7, 7}, act_step, 9);
  Tensor w = GridAlignedWeights(Shape{8, 3, 3, 3}, w_step, 10);  // groups=2.
  Tensor bias = GridAligned(Shape{8}, 0.125f, 11);
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  const float in_scale = SymmetricScale(MaxAbs(input.data(),
                                               input.num_elements()));
  ASSERT_EQ(in_scale, act_step);
  auto ref = Conv2DGemmEx(input, w, bias, 2, 1, 2, true, nullptr);
  ASSERT_TRUE(ref.ok());
  auto got = Conv2DGemmInt8(input, *qw, bias, 2, 1, 2, true, in_scale,
                            nullptr);
  ASSERT_TRUE(got.ok());
  ExpectClose(*ref, *got, 1e-6f);
}

TEST(Conv2DGemmInt8Test, RandomInputErrorBoundedByQuantizationStep) {
  Rng rng(13);
  Tensor input = Tensor::RandomGaussian(Shape{8, 12, 12}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 8, 3, 3}, &rng);
  for (int64_t i = 0; i < w.num_elements(); ++i) w.set(i, w.at(i) * 0.1f);
  Tensor bias = Tensor::RandomGaussian(Shape{16}, &rng);

  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  const float act_scale = SymmetricScale(MaxAbs(input.data(),
                                                input.num_elements()));
  auto ref = Conv2DGemmEx(input, w, bias, 1, 1, 1, false, nullptr);
  ASSERT_TRUE(ref.ok());
  auto got = Conv2DGemmInt8(input, *qw, bias, 1, 1, 1, false, act_scale,
                            nullptr);
  ASSERT_TRUE(got.ok());

  // Per-output analytic bound: k accumulation steps, each contributing at
  // most half an activation step times max|w| plus half a weight step
  // times max|a|.
  const int64_t k = 8 * 3 * 3;
  float max_w_scale = 0.0f;
  for (float s : qw->scales) max_w_scale = std::max(max_w_scale, s);
  const float max_a = MaxAbs(input.data(), input.num_elements());
  const float bound = static_cast<float>(k) *
                      (0.5f * act_scale * max_w_scale * 127.0f +
                       0.5f * max_w_scale * max_a) * 1.01f;
  float max_err = 0.0f;
  for (int64_t i = 0; i < ref->num_elements(); ++i) {
    max_err = std::max(max_err, std::abs(ref->at(i) - got->at(i)));
  }
  EXPECT_LE(max_err, bound);
  // And the bound is not vacuous: the outputs genuinely agree to a few
  // percent of their dynamic range.
  const float out_range = MaxAbs(ref->data(), ref->num_elements());
  EXPECT_LE(max_err, 0.05f * out_range)
      << "max_err=" << max_err << " range=" << out_range;
}

TEST(FullyConnectedInt8Test, MatchesFp32OnGrid) {
  const float act_step = 0.03125f;   // 2^-5
  const float w_step = 0.0078125f;   // 2^-7
  Tensor x = GridAligned(Shape{64}, act_step, 21);
  Tensor w = GridAlignedWeights(Shape{10, 64}, w_step, 22);
  Tensor bias = GridAligned(Shape{10}, 0.125f, 23);
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  const float in_scale = SymmetricScale(MaxAbs(x.data(), x.num_elements()));
  ASSERT_EQ(in_scale, act_step);

  auto ref = MatMulReference(w, Tensor(Shape{64, 1}, std::vector<float>(
                                           x.data(),
                                           x.data() + x.num_elements())));
  ASSERT_TRUE(ref.ok());
  auto got = FullyConnectedInt8(x, *qw, bias, false, in_scale);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->num_elements(), 10);
  // Grid-exact inputs: the int8 path and the fp32 oracle compute the same
  // exactly-representable values (see the conv grid test's argument).
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_LE(std::abs(got->at(i) - (ref->at(i) + bias.at(i))), 1e-5f)
        << "at " << i;
  }
}

// ------------------------------------------------------ model-level int8

TEST(CnnInt8Test, RequiresCalibration) {
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->has_int8_calibration());

  Rng rng(1);
  Tensor image = Tensor::RandomGaussian(arch->input_shape(), &rng);
  dl::CnnOptions opts;
  opts.precision = dl::Precision::kInt8;
  auto run = model->RunRange(image, 0, arch->num_layers() - 1, opts);
  EXPECT_TRUE(run.status().IsFailedPrecondition());

  EXPECT_TRUE(model->CalibrateInt8({image}).ok());
  EXPECT_TRUE(model->has_int8_calibration());
  EXPECT_TRUE(model->RunRange(image, 0, arch->num_layers() - 1, opts).ok());
}

TEST(CnnInt8Test, CalibrationRejectsBadBatches) {
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->CalibrateInt8({}).IsInvalidArgument());
  EXPECT_TRUE(
      model->CalibrateInt8({Tensor(Shape{1, 2, 2})}).IsInvalidArgument());
}

TEST(CnnInt8Test, SetWeightsInvalidatesCalibration) {
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  Tensor image = Tensor::RandomGaussian(arch->input_shape(), &rng);
  ASSERT_TRUE(model->CalibrateInt8({image}).ok());

  // Re-installing weights (even identical ones) must drop the stale scales.
  std::vector<Tensor> weights;
  for (const Tensor* w : model->weight_tensors()) weights.push_back(*w);
  ASSERT_TRUE(model->SetWeights(weights).ok());
  EXPECT_FALSE(model->has_int8_calibration());
}

TEST(CnnInt8Test, ForwardAccuracyDeltaIsBounded) {
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model =
      dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
  ASSERT_TRUE(model.ok());

  Rng rng(5);
  std::vector<Tensor> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(Tensor::RandomGaussian(arch->input_shape(), &rng));
  }
  ASSERT_TRUE(model->CalibrateInt8(batch).ok());

  dl::CnnOptions fp32;
  dl::CnnOptions int8;
  int8.precision = dl::Precision::kInt8;
  const int last = arch->num_layers() - 1;
  for (const Tensor& image : batch) {
    auto ref = model->RunRange(image, 0, last, fp32);
    auto got = model->RunRange(image, 0, last, int8);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(ref->shape(), got->shape());
    // Relative L2 error of the final feature vector: quantization noise
    // accumulates across layers but must stay a small fraction of the
    // signal for transfer features to remain usable.
    double err2 = 0, ref2 = 0;
    for (int64_t i = 0; i < ref->num_elements(); ++i) {
      const double d = ref->at(i) - got->at(i);
      err2 += d * d;
      ref2 += static_cast<double>(ref->at(i)) * ref->at(i);
    }
    ASSERT_GT(ref2, 0.0);
    EXPECT_LE(std::sqrt(err2 / ref2), 0.15)
        << "relative L2 " << std::sqrt(err2 / ref2);
  }
}

TEST(CnnInt8Test, Int8OpsCountersMeterQuantizedLayers) {
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  Rng rng(6);
  Tensor image = Tensor::RandomGaussian(arch->input_shape(), &rng);
  ASSERT_TRUE(model->CalibrateInt8({image}).ok());

  obs::Registry registry;
  model->EnableProfiling(&registry);
  dl::CnnOptions int8;
  int8.precision = dl::Precision::kInt8;
  const int last = arch->num_layers() - 1;
  ASSERT_TRUE(model->RunRange(image, 0, last, int8).ok());

  int64_t counted = 0;
  for (const obs::Counter* c : registry.counters()) {
    if (c->name().rfind("dl.int8_ops.", 0) == 0) counted += c->value();
  }
  int64_t expected = 0;
  for (int l = 0; l <= last; ++l) expected += model->layer_int8_ops(l);
  EXPECT_GT(counted, 0);
  EXPECT_EQ(counted, expected);

  // An fp32 forward adds nothing to the int8 counters.
  ASSERT_TRUE(model->RunRange(image, 0, last, dl::CnnOptions{}).ok());
  int64_t after = 0;
  for (const obs::Counter* c : registry.counters()) {
    if (c->name().rfind("dl.int8_ops.", 0) == 0) after += c->value();
  }
  EXPECT_EQ(after, counted);
  model->EnableProfiling(nullptr);
}

}  // namespace
}  // namespace vista
