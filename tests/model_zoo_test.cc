#include <gtest/gtest.h>

#include "common/random.h"
#include "dl/model_zoo.h"

namespace vista::dl {
namespace {

TEST(ModelZooTest, AlexNetMatchesPublishedStatistics) {
  auto arch = AlexNetArch();
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->num_layers(), 8);
  EXPECT_EQ(arch->input_shape(), (Shape{3, 227, 227}));
  // Published layer shapes.
  auto shape_of = [&](const char* name) {
    return arch->layer(arch->FindLayer(name).value()).output_shape;
  };
  EXPECT_EQ(shape_of("conv1"), (Shape{96, 27, 27}));
  EXPECT_EQ(shape_of("conv2"), (Shape{256, 13, 13}));
  EXPECT_EQ(shape_of("conv5"), (Shape{256, 6, 6}));
  EXPECT_EQ(shape_of("fc6"), (Shape{4096}));
  EXPECT_EQ(shape_of("fc8"), (Shape{1000}));
  // ~61M parameters.
  EXPECT_NEAR(static_cast<double>(arch->total_params()), 61e6, 2e6);
  // ~1.45 GFLOPs (2 FLOPs per MAC ~= 727M MACs).
  EXPECT_NEAR(static_cast<double>(arch->total_flops()), 1.45e9, 0.2e9);
}

TEST(ModelZooTest, Vgg16MatchesPublishedStatistics) {
  auto arch = Vgg16Arch();
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->num_layers(), 8);
  auto shape_of = [&](const char* name) {
    return arch->layer(arch->FindLayer(name).value()).output_shape;
  };
  EXPECT_EQ(shape_of("conv5"), (Shape{512, 7, 7}));
  EXPECT_EQ(shape_of("fc6"), (Shape{4096}));
  // ~138M parameters; ~30.9 GFLOPs (15.5 GMACs).
  EXPECT_NEAR(static_cast<double>(arch->total_params()), 138e6, 3e6);
  EXPECT_NEAR(static_cast<double>(arch->total_flops()), 30.9e9, 2e9);
}

TEST(ModelZooTest, ResNet50MatchesPublishedStatistics) {
  auto arch = ResNet50Arch();
  ASSERT_TRUE(arch.ok());
  // 1 stem + 3 + 4 + 6 + 3 blocks + 1 head = 18 logical layers.
  EXPECT_EQ(arch->num_layers(), 18);
  auto shape_of = [&](const char* name) {
    return arch->layer(arch->FindLayer(name).value()).output_shape;
  };
  EXPECT_EQ(shape_of("conv1"), (Shape{64, 56, 56}));
  EXPECT_EQ(shape_of("conv2_3"), (Shape{256, 56, 56}));
  EXPECT_EQ(shape_of("conv3_4"), (Shape{512, 28, 28}));
  EXPECT_EQ(shape_of("conv4_6"), (Shape{1024, 14, 14}));
  EXPECT_EQ(shape_of("conv5_3"), (Shape{2048, 7, 7}));
  EXPECT_EQ(shape_of("fc6"), (Shape{1000}));
  // ~25.5M parameters; ~7.7 GFLOPs (3.9 GMACs).
  EXPECT_NEAR(static_cast<double>(arch->total_params()), 25.5e6, 1.5e6);
  EXPECT_NEAR(static_cast<double>(arch->total_flops()), 7.7e9, 1e9);
}

TEST(ModelZooTest, PaperLayerOfResNetIs784KB) {
  // Section 1.1: "one of ResNet50's layers is 784KB but the image is only
  // 14KB" — conv4_6 output: 1024 x 14 x 14 floats.
  auto arch = ResNet50Arch();
  ASSERT_TRUE(arch.ok());
  const int idx = arch->FindLayer("conv4_6").value();
  EXPECT_EQ(arch->layer(idx).output_shape.num_bytes(), 802816);
}

TEST(ModelZooTest, TopFiveResNetLayersMatchFigure8) {
  auto arch = ResNet50Arch();
  ASSERT_TRUE(arch.ok());
  auto top = arch->TopLayers(5);
  ASSERT_TRUE(top.ok());
  std::vector<std::string> names;
  for (int i : *top) names.push_back(arch->layer(i).name);
  EXPECT_EQ(names, (std::vector<std::string>{"conv4_6", "conv5_1", "conv5_2",
                                             "conv5_3", "fc6"}));
}

TEST(ModelZooTest, AlexNetTopFourLayersMatchSection5) {
  auto arch = AlexNetArch();
  ASSERT_TRUE(arch.ok());
  auto top = arch->TopLayers(4);
  ASSERT_TRUE(top.ok());
  std::vector<std::string> names;
  for (int i : *top) names.push_back(arch->layer(i).name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"conv5", "fc6", "fc7", "fc8"}));
}

TEST(ModelZooTest, LazyRedundancyOfAlexNetFc8OverFc7) {
  // Section 4.2.1: extracting fc7 independently of fc8 incurs ~99%
  // redundant computations, because fc8 adds only ~4M MACs on top of fc7.
  auto arch = AlexNetArch();
  ASSERT_TRUE(arch.ok());
  const auto& fc7 = arch->layer(arch->FindLayer("fc7").value());
  const auto& fc8 = arch->layer(arch->FindLayer("fc8").value());
  const double redundant = static_cast<double>(fc7.cumulative_flops) /
                           static_cast<double>(fc8.cumulative_flops);
  EXPECT_GT(redundant, 0.99);
}

TEST(ModelZooTest, SerializedSizesMatchKnownModelFiles) {
  // AlexNet ~233 MB, VGG16 ~528 MB, ResNet50 ~98 MB of float32 weights.
  auto alex = AlexNetArch();
  auto vgg = Vgg16Arch();
  auto resnet = ResNet50Arch();
  ASSERT_TRUE(alex.ok());
  ASSERT_TRUE(vgg.ok());
  ASSERT_TRUE(resnet.ok());
  EXPECT_NEAR(static_cast<double>(alex->serialized_bytes()), 233e6, 20e6);
  EXPECT_NEAR(static_cast<double>(vgg->serialized_bytes()), 553e6, 30e6);
  EXPECT_NEAR(static_cast<double>(resnet->serialized_bytes()), 102e6, 10e6);
}

TEST(ModelZooTest, RosterRoundTripNames) {
  for (KnownCnn cnn : {KnownCnn::kAlexNet, KnownCnn::kVgg16,
                       KnownCnn::kResNet50}) {
    auto parsed = KnownCnnFromString(KnownCnnToString(cnn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, cnn);
  }
  EXPECT_FALSE(KnownCnnFromString("LeNet").ok());
}

TEST(ModelZooTest, MemoryStatsAvailableForRoster) {
  for (KnownCnn cnn : {KnownCnn::kAlexNet, KnownCnn::kVgg16,
                       KnownCnn::kResNet50}) {
    auto stats = LookupMemoryStats(cnn);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->serialized_bytes, 0);
    EXPECT_GT(stats->runtime_cpu_bytes, 0);
    EXPECT_GT(stats->runtime_gpu_bytes, 0);
  }
}

TEST(ModelZooTest, MicroVariantsMirrorLayerNames) {
  for (KnownCnn cnn : {KnownCnn::kAlexNet, KnownCnn::kVgg16,
                       KnownCnn::kResNet50}) {
    auto full = BuildArch(cnn);
    auto micro = BuildMicroArch(cnn);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(micro.ok());
    // The micro top layers use the same names as the full model tops.
    EXPECT_EQ(micro->layer(micro->num_layers() - 1).name,
              full->layer(full->num_layers() - 1).name);
    EXPECT_LT(micro->total_flops(), full->total_flops() / 100);
  }
}

TEST(ModelZooTest, MicroModelsRunEndToEnd) {
  Rng rng(3);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  for (KnownCnn cnn : {KnownCnn::kAlexNet, KnownCnn::kVgg16,
                       KnownCnn::kResNet50}) {
    auto arch = BuildMicroArch(cnn);
    ASSERT_TRUE(arch.ok());
    auto model = CnnModel::Instantiate(*arch, 17);
    ASSERT_TRUE(model.ok()) << KnownCnnToString(cnn);
    auto out = model->Run(img);
    ASSERT_TRUE(out.ok()) << KnownCnnToString(cnn);
    EXPECT_EQ(out->shape().rank(), 1);
  }
}

TEST(ModelZooTest, FullAlexNetSingleImageInference) {
  // The only full-size model cheap enough to actually run in tests.
  auto arch = AlexNetArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 5);
  ASSERT_TRUE(model.ok());
  Rng rng(9);
  Tensor img = Tensor::RandomGaussian(Shape{3, 227, 227}, &rng, 0.2f);
  auto out = model->Run(img);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1000}));
}

}  // namespace
}  // namespace vista::dl
