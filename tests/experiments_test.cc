#include <gtest/gtest.h>

#include "vista/experiments.h"

namespace vista {
namespace {

TEST(ProfilesTest, SparkDefaultsMatchPaperSetup) {
  SystemEnv env;
  SystemProfile p = SparkDefaultProfile(env, 5);
  EXPECT_EQ(p.pd, PdSystem::kSparkLike);
  EXPECT_EQ(p.memory.heap_bytes, GiB(29));
  EXPECT_EQ(p.memory.cpus, 5);
  EXPECT_TRUE(p.memory.allow_disk_spill);
  EXPECT_FALSE(p.memory.offheap_static);
  EXPECT_EQ(p.join, df::JoinStrategy::kShuffleHash);
  EXPECT_EQ(p.persistence, df::PersistenceFormat::kDeserialized);
  // Regions partition the heap.
  EXPECT_LE(p.memory.user_bytes + p.memory.storage_bytes +
                p.memory.core_bytes,
            p.memory.heap_bytes);
  // Partitioning scales with dataset size (input splits).
  EXPECT_EQ(SparkDefaultProfile(env, 5, 20000).num_partitions, 200);
  EXPECT_EQ(SparkDefaultProfile(env, 5, 200000).num_partitions, 2000);
}

TEST(ProfilesTest, IgniteDefaultsMatchPaperSetup) {
  SystemEnv env;
  SystemProfile p = IgniteDefaultProfile(env, 7);
  EXPECT_EQ(p.pd, PdSystem::kIgniteLike);
  EXPECT_EQ(p.memory.heap_bytes, GiB(4));
  EXPECT_EQ(p.memory.offheap_storage_bytes, GiB(25));
  EXPECT_TRUE(p.memory.offheap_static);
  EXPECT_FALSE(p.memory.allow_disk_spill);  // Memory-only mode.
  EXPECT_EQ(p.num_partitions, 1024);
}

TEST(ProfilesTest, VistaProfileRealizesDecisions) {
  SystemEnv env;
  OptimizerDecisions d;
  d.cpu = 6;
  d.num_partitions = 336;
  d.mem_storage = GiB(18);
  d.mem_user = GiB(2);
  d.join = df::JoinStrategy::kBroadcast;
  d.persistence = df::PersistenceFormat::kSerialized;

  SystemProfile spark = VistaProfile(env, PdSystem::kSparkLike, d);
  EXPECT_EQ(spark.memory.cpus, 6);
  EXPECT_EQ(spark.num_partitions, 336);
  EXPECT_EQ(spark.memory.storage_bytes, GiB(18));
  EXPECT_EQ(spark.memory.user_bytes, GiB(2));
  EXPECT_EQ(spark.join, df::JoinStrategy::kBroadcast);
  EXPECT_FALSE(spark.memory.offheap_static);

  SystemProfile ignite = VistaProfile(env, PdSystem::kIgniteLike, d);
  EXPECT_TRUE(ignite.memory.offheap_static);
  EXPECT_EQ(ignite.memory.offheap_storage_bytes, GiB(18));
  // Vista enables disk-backed storage on Ignite so overflow spills.
  EXPECT_TRUE(ignite.memory.allow_disk_spill);
  // Ignite heap holds only user+core (+base), not storage.
  EXPECT_LT(ignite.memory.heap_bytes, spark.memory.heap_bytes);
}

TEST(ProfilesTest, ExplicitProfileKeepsStorageFloor) {
  SystemEnv env;
  // Huge DL footprint squeezes the worker; storage must stay positive.
  SystemProfile p =
      ExplicitProfile(env, PdSystem::kSparkLike, 4, GiB(7), GiB(2), 128);
  EXPECT_GE(p.memory.storage_bytes, GiB(1));
  EXPECT_EQ(p.memory.cpus, 4);
  EXPECT_EQ(p.num_partitions, 128);
}

TEST(ExperimentsTest, DataStatsMatchPaperDatasets) {
  EXPECT_EQ(FoodsDataStats().num_records, 20000);
  EXPECT_EQ(FoodsDataStats(4.0).num_records, 80000);
  EXPECT_EQ(FoodsDataStats().num_struct_features, 130);
  EXPECT_EQ(AmazonDataStats().num_records, 200000);
  EXPECT_EQ(AmazonDataStats().num_struct_features, 200);
  EXPECT_EQ(PaperNumLayers(dl::KnownCnn::kAlexNet), 4);
  EXPECT_EQ(PaperNumLayers(dl::KnownCnn::kVgg16), 3);
  EXPECT_EQ(PaperNumLayers(dl::KnownCnn::kResNet50), 5);
}

TEST(ExperimentsTest, StandardApproachesMatchFigure6) {
  const auto approaches = StandardApproaches();
  ASSERT_EQ(approaches.size(), 6u);
  EXPECT_EQ(approaches.front(), "Lazy-1");
  EXPECT_EQ(approaches.back(), "Vista");
}

TEST(ExperimentsTest, UnknownApproachRejected) {
  ExperimentSetup setup;
  setup.data = FoodsDataStats();
  auto r = RunApproach(setup, "Psychic");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ExperimentsTest, PreMatReportsMaterializationTime) {
  ExperimentSetup setup;
  setup.cnn = dl::KnownCnn::kAlexNet;
  setup.num_layers = 4;
  setup.data = FoodsDataStats();
  auto r = RunApproach(setup, "Lazy-5+Pre-mat");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->pre_mat_seconds, 0);
  EXPECT_FALSE(r->result.crashed());
}

TEST(ExperimentsTest, VistaInfeasibleEnvPropagatesStatus) {
  ExperimentSetup setup;
  setup.cnn = dl::KnownCnn::kVgg16;
  setup.num_layers = 3;
  setup.data = FoodsDataStats();
  setup.env.node_memory_bytes = GiB(8);
  auto r = RunApproach(setup, "Vista");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(ExperimentsTest, DrillDownHonorsExplicitPartitioning) {
  ExperimentSetup setup;
  setup.cnn = dl::KnownCnn::kAlexNet;
  setup.num_layers = 4;
  setup.data = FoodsDataStats();
  DrillDownConfig config;
  config.num_partitions = 64;
  auto r = RunDrillDown(setup, config);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->crashed());
  // Few coarse partitions vs many fine ones: the scheduling-overhead term
  // differs measurably (Fig. 11(B)'s right side).
  DrillDownConfig many = config;
  many.num_partitions = 4096;
  auto r_many = RunDrillDown(setup, many);
  ASSERT_TRUE(r_many.ok());
  EXPECT_GT(r_many->total_seconds, r->total_seconds);
}

TEST(ExperimentsTest, LazyApproachUsesRequestedParallelism) {
  ExperimentSetup setup;
  setup.cnn = dl::KnownCnn::kAlexNet;
  setup.num_layers = 4;
  setup.data = FoodsDataStats();
  auto lazy1 = RunApproach(setup, "Lazy-1");
  auto lazy7 = RunApproach(setup, "Lazy-7");
  ASSERT_TRUE(lazy1.ok());
  ASSERT_TRUE(lazy7.ok());
  // More threads -> faster inference, saturating but clearly ordered.
  EXPECT_GT(lazy1->result.total_seconds,
            lazy7->result.total_seconds * 1.5);
}

}  // namespace
}  // namespace vista
