// End-to-end integration across the extension surfaces: a custom CNN is
// declared as text, instantiated, its weights saved and reloaded, data is
// round-tripped through the on-disk table format, and the whole pipeline
// (staged plan, joins, downstream training with standardization) runs on
// the reloaded artifacts — verifying the subsystems compose, not just work
// in isolation.

#include <cstdio>

#include <gtest/gtest.h>

#include "dataflow/io.h"
#include "dl/model_parser.h"
#include "dl/weights_io.h"
#include "features/synthetic.h"
#include "ml/scaler.h"
#include "vista/real_executor.h"
#include "vista/roster.h"

namespace vista {
namespace {

constexpr char kSpec[] = R"(
cnn IntegrationNet input 3x32x32
layer stem
  conv filters=10 kernel=3 stride=1 pad=1
  maxpool window=2 stride=2
layer block
  bottleneck mid=6 out=24 stride=2 project=true
layer embed
  gap
  fc units=20
layer logits
  fc units=8 relu=false
)";

TEST(IntegrationTest, ParserWeightsIoTablesAndStagedRunCompose) {
  // 1. Text spec -> architecture -> instantiated model -> save -> load.
  auto arch = dl::ParseCnnSpec(kSpec);
  ASSERT_TRUE(arch.ok()) << arch.status().ToString();
  auto model =
      dl::CnnModel::Instantiate(*arch, 77, dl::WeightInit::kGaborFirstConv);
  ASSERT_TRUE(model.ok());
  const std::string weights_path = "/tmp/vista_integration.vcnn";
  ASSERT_TRUE(dl::SaveCnnModel(*model, weights_path).ok());
  auto reloaded = dl::LoadCnnModel(weights_path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(weights_path.c_str());

  // 2. Custom model registered in the roster: the optimizer can plan it.
  auto roster = Roster::Default();
  ASSERT_TRUE(roster.ok());
  ASSERT_TRUE(roster->Register(*arch).ok());
  ASSERT_TRUE(roster->LookupByName("IntegrationNet").ok());

  // 3. Data -> disk -> back.
  feat::MultimodalDatasetSpec spec;
  spec.num_records = 400;
  spec.num_struct_features = 8;
  spec.image_size = 32;
  spec.images_per_record = 2;  // Exercise the multi-image path too.
  auto data = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());

  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  df::Engine engine(engine_config);
  auto t_str0 = engine.MakeTable(std::move(data->t_str), 4).value();
  auto t_img0 = engine.MakeTable(std::move(data->t_img), 4).value();
  ASSERT_TRUE(df::WriteTableFile(t_str0, "/tmp/vista_int_str.vtbl").ok());
  ASSERT_TRUE(df::WriteTableFile(t_img0, "/tmp/vista_int_img.vtbl").ok());
  auto t_str = df::ReadTableFile("/tmp/vista_int_str.vtbl").value();
  auto t_img = df::ReadTableFile("/tmp/vista_int_img.vtbl").value();
  std::remove("/tmp/vista_int_str.vtbl");
  std::remove("/tmp/vista_int_img.vtbl");

  // 4. Staged feature transfer over the reloaded model and tables.
  TransferWorkload workload;
  workload.layers = arch->TopLayers(3).value();
  workload.training_iterations = 15;
  auto plan = CompilePlan(LogicalPlan::kStaged, workload);
  ASSERT_TRUE(plan.ok());
  RealExecutor executor(&engine, &*reloaded);
  RealExecutorConfig config;
  config.num_partitions = 4;
  auto result = executor.Run(*plan, workload, t_str, t_img, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->per_layer.size(), 3u);
  for (const auto& layer : result->per_layer) {
    EXPECT_GT(layer.test_metrics.total(), 0) << layer.layer_name;
  }

  // 5. The reloaded model and the original model produce identical
  // features, so identical downstream metrics.
  RealExecutor original_exec(&engine, &*model);
  auto original = original_exec.Run(*plan, workload, t_str, t_img, config);
  ASSERT_TRUE(original.ok());
  for (size_t i = 0; i < result->per_layer.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->per_layer[i].test_f1,
                     original->per_layer[i].test_f1);
  }
}

TEST(IntegrationTest, ScalerComposesWithTransferFeatures) {
  // Standardized transfer features keep downstream training healthy when
  // raw CNN activations have awkward scales.
  feat::MultimodalDatasetSpec spec;
  spec.num_records = 400;
  spec.num_struct_features = 8;
  spec.image_size = 32;
  auto data = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  df::Engine engine{df::EngineConfig{}};
  auto t_str = engine.MakeTable(std::move(data->t_str), 4).value();
  auto t_img = engine.MakeTable(std::move(data->t_img), 4).value();

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet).value();
  auto model = dl::CnnModel::Instantiate(arch, 3,
                                         dl::WeightInit::kGaborFirstConv)
                   .value();
  TransferWorkload workload;
  workload.cnn = dl::KnownCnn::kAlexNet;
  workload.layers = arch.TopLayers(1).value();
  RealExecutor executor(&engine, &model);
  RealExecutorConfig config;
  config.num_partitions = 4;
  auto features = executor.PreMaterializeBase(workload, t_img, config);
  ASSERT_TRUE(features.ok());
  auto joined = engine.Join(t_str, *features,
                            df::JoinStrategy::kShuffleHash, 4)
                    .value();

  const auto raw_extractor = MakeTransferExtractor(0, 2);
  auto scaler = ml::StandardScaler::Fit(&engine, joined, raw_extractor);
  ASSERT_TRUE(scaler.ok());
  ml::LogisticRegressionConfig lr;
  lr.iterations = 25;
  auto trained = ml::TrainLogisticRegression(
      &engine, joined, scaler->Wrap(raw_extractor), lr);
  ASSERT_TRUE(trained.ok());
  // Sanity: model separates the classes on standardized features.
  ml::BinaryMetrics metrics;
  const std::vector<df::Record> rows = engine.Collect(joined).value();
  const auto wrapped = scaler->Wrap(raw_extractor);
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    ASSERT_TRUE(wrapped(r, &x, &label).ok());
    metrics.Add(trained->Predict(x.data()), label > 0.5f ? 1 : 0);
  }
  EXPECT_GT(metrics.F1(), 0.85);
}

}  // namespace
}  // namespace vista
