#include <gtest/gtest.h>

#include "common/random.h"
#include "dl/model_parser.h"
#include "dl/model_zoo.h"
#include "vista/estimator.h"
#include "vista/optimizer.h"

namespace vista::dl {
namespace {

constexpr char kTinySpec[] = R"(
# A small custom CNN.
cnn TinyNet input 3x32x32
layer conv1
  conv filters=8 kernel=3 stride=1 pad=1
  maxpool window=2 stride=2
layer block1
  bottleneck mid=4 out=16 stride=2 project=true
layer head
  gap
  fc units=10 relu=false
)";

TEST(ModelParserTest, ParsesValidSpec) {
  auto arch = ParseCnnSpec(kTinySpec);
  ASSERT_TRUE(arch.ok()) << arch.status().ToString();
  EXPECT_EQ(arch->name(), "TinyNet");
  EXPECT_EQ(arch->input_shape(), (Shape{3, 32, 32}));
  EXPECT_EQ(arch->num_layers(), 3);
  EXPECT_EQ(arch->layer(0).name, "conv1");
  EXPECT_EQ(arch->layer(0).output_shape, (Shape{8, 16, 16}));
  EXPECT_EQ(arch->layer(1).output_shape, (Shape{16, 8, 8}));
  EXPECT_EQ(arch->layer(2).output_shape, (Shape{10}));
}

TEST(ModelParserTest, ParsedModelRuns) {
  auto arch = ParseCnnSpec(kTinySpec);
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 3);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  auto out = model->Run(img);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{10}));
}

TEST(ModelParserTest, RoundTripsThroughSpecFormat) {
  for (auto build : {AlexNetArch, Vgg16Arch, ResNet50Arch,
                     MicroResNet50Arch}) {
    auto original = build();
    ASSERT_TRUE(original.ok());
    const std::string spec = CnnSpecToString(*original);
    auto parsed = ParseCnnSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec;
    ASSERT_EQ(parsed->num_layers(), original->num_layers());
    for (int i = 0; i < parsed->num_layers(); ++i) {
      EXPECT_EQ(parsed->layer(i).name, original->layer(i).name);
      EXPECT_EQ(parsed->layer(i).output_shape,
                original->layer(i).output_shape);
      EXPECT_EQ(parsed->layer(i).flops, original->layer(i).flops);
      EXPECT_EQ(parsed->layer(i).param_count,
                original->layer(i).param_count);
    }
  }
}

TEST(ModelParserTest, DefaultsApplied) {
  auto arch = ParseCnnSpec(
      "cnn D input 3x8x8\nlayer l1\n  conv filters=4 kernel=3\n");
  ASSERT_TRUE(arch.ok());
  // stride defaults to 1, pad to 0: 8 -> 6.
  EXPECT_EQ(arch->layer(0).output_shape, (Shape{4, 6, 6}));
}

TEST(ModelParserTest, GroupedConvParses) {
  auto arch = ParseCnnSpec(
      "cnn G input 4x8x8\nlayer l1\n"
      "  conv filters=8 kernel=3 pad=1 groups=2\n");
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->layer(0).param_count, 8 * 2 * 9 + 8);
}

TEST(ModelParserTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* spec;
    const char* want;
  };
  const Case cases[] = {
      {"layer l1\n", "must start with a 'cnn' header"},
      {"cnn X input 3x8\n", "CxHxW"},
      {"cnn X input 3x8x8\n  conv filters=2 kernel=1\n",
       "before any 'layer'"},
      {"cnn X input 3x8x8\nlayer l\n  conv kernel=3\n", "filters"},
      {"cnn X input 3x8x8\nlayer l\n  conv filters=a kernel=3\n",
       "bad integer"},
      {"cnn X input 3x8x8\nlayer l\n  warp factor=9\n", "unknown op"},
      {"cnn X input 3x8x8\nlayer l\n  conv filters=2 kernel=3 bogus=1\n",
       "unknown argument"},
      {"cnn X input 3x8x8\nlayer l\n  fc units=4 relu=maybe\n",
       "true/false"},
      {"cnn X input 3x8x8\ncnn Y input 3x8x8\n", "duplicate"},
      {"", "empty"},
  };
  for (const Case& c : cases) {
    auto arch = ParseCnnSpec(c.spec);
    ASSERT_FALSE(arch.ok()) << c.spec;
    EXPECT_NE(arch.status().message().find(c.want), std::string::npos)
        << "spec: " << c.spec << "\ngot: " << arch.status().ToString();
  }
}

TEST(ModelParserTest, ShapeValidationCatchesImpossibleNets) {
  // Pooling below 1x1.
  auto arch = ParseCnnSpec(
      "cnn X input 3x4x4\nlayer l\n  maxpool window=8 stride=8\n");
  EXPECT_FALSE(arch.ok());
}

}  // namespace
}  // namespace vista::dl

namespace vista {
namespace {

TEST(RosterRegisterTest, RegisterAndOptimizeCustomCnn) {
  auto roster = Roster::Default();
  ASSERT_TRUE(roster.ok());
  auto arch = dl::ParseCnnSpec(
      "cnn CustomNet input 3x224x224\n"
      "layer conv1\n  conv filters=32 kernel=7 stride=2 pad=3\n"
      "  maxpool window=3 stride=2 pad=1\n"
      "layer conv2\n  conv filters=64 kernel=3 stride=2 pad=1\n"
      "layer head\n  gap\n  fc units=100 relu=false\n");
  ASSERT_TRUE(arch.ok());
  ASSERT_TRUE(roster->Register(*arch).ok());

  auto entry = roster->LookupByName("CustomNet");
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE((*entry)->cnn.has_value());
  EXPECT_GT((*entry)->memory.runtime_cpu_bytes, 0);

  // The optimizer works on the custom entry like any roster CNN.
  TransferWorkload workload;
  workload.layers = (*entry)->arch.TopLayers(2).value();
  DataStats stats;
  stats.num_records = 20000;
  stats.num_struct_features = 130;
  auto decisions =
      OptimizeFeatureTransfer(SystemEnv{}, **entry, workload, stats);
  ASSERT_TRUE(decisions.ok());
  EXPECT_GE(decisions->cpu, 1);
}

TEST(RosterRegisterTest, DuplicateNameRejected) {
  auto roster = Roster::Default();
  ASSERT_TRUE(roster.ok());
  auto arch = dl::AlexNetArch();
  ASSERT_TRUE(arch.ok());
  auto st = roster->Register(*arch);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(RosterRegisterTest, BuiltinsFoundByName) {
  auto roster = Roster::Default();
  ASSERT_TRUE(roster.ok());
  for (const char* name : {"AlexNet", "VGG16", "ResNet50"}) {
    EXPECT_TRUE(roster->LookupByName(name).ok()) << name;
  }
  EXPECT_FALSE(roster->LookupByName("LeNet").ok());
}

}  // namespace
}  // namespace vista
