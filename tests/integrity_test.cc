#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/fault_injector.h"
#include "common/retry.h"
#include "common/status.h"
#include "dataflow/block_format.h"
#include "dataflow/engine.h"
#include "dataflow/spill.h"
#include "obs/metrics.h"
#include "serve/view_cache.h"

namespace vista {
namespace {

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 (iSCSI) CRC32C test vectors.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> ascending(32);
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendIsEquivalentToOneShot) {
  std::vector<uint8_t> data(1337);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  EXPECT_EQ(Crc32cExtend(0, data.data(), data.size()), whole);
  // Chunked at awkward boundaries (1, 7, 8, 64, remainder).
  const size_t cuts[] = {1, 8, 15, 79, 640};
  uint32_t crc = 0;
  size_t offset = 0;
  for (size_t cut : cuts) {
    crc = Crc32cExtend(crc, data.data() + offset, cut - offset);
    offset = cut;
  }
  crc = Crc32cExtend(crc, data.data() + offset, data.size() - offset);
  EXPECT_EQ(crc, whole);
  // Informational only — either dispatch target must produce the vectors
  // above, so just exercise the query.
  (void)Crc32cIsHardwareAccelerated();
}

// ---------------------------------------------------------------------------
// Durable block frame

std::vector<uint8_t> PatternPayload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  return payload;
}

TEST(BlockFormatTest, RoundTripsPayloadsAndSequenceNumbers) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
    const std::vector<uint8_t> payload = PatternPayload(n);
    std::vector<uint8_t> frame;
    df::EncodeBlockFrame(payload, /*seq=*/n + 3, &frame);
    EXPECT_EQ(frame.size(), n + df::kBlockFrameOverhead);
    df::BlockDefect defect = df::BlockDefect::kNone;
    auto decoded =
        df::DecodeBlockFrame(frame.data(), frame.size(), /*expected_seq=*/-1,
                             &defect);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(defect, df::BlockDefect::kNone);
    EXPECT_EQ(decoded->payload, payload);
    EXPECT_EQ(decoded->seq, n + 3);
  }
}

// Satellite: fuzz the durable-block decoder the same way the record codec is
// fuzzed — every truncation point and every single-bit flip must decode to
// kDataLoss, never crash, never return a "successful" wrong payload.
TEST(BlockFormatFuzzTest, EveryTruncationIsDataLoss) {
  const std::vector<uint8_t> payload = PatternPayload(64);
  std::vector<uint8_t> frame;
  df::EncodeBlockFrame(payload, /*seq=*/1, &frame);
  for (size_t len = 0; len < frame.size(); ++len) {
    df::BlockDefect defect = df::BlockDefect::kNone;
    auto decoded = df::DecodeBlockFrame(frame.data(), len, -1, &defect);
    EXPECT_FALSE(decoded.ok()) << "truncated to " << len;
    EXPECT_TRUE(decoded.status().IsDataLoss()) << decoded.status();
    EXPECT_NE(defect, df::BlockDefect::kNone);
  }
}

TEST(BlockFormatFuzzTest, EverySingleBitFlipIsDataLoss) {
  const std::vector<uint8_t> payload = PatternPayload(48);
  std::vector<uint8_t> frame;
  df::EncodeBlockFrame(payload, /*seq=*/9, &frame);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = frame;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      df::BlockDefect defect = df::BlockDefect::kNone;
      auto decoded =
          df::DecodeBlockFrame(mutated.data(), mutated.size(), 9, &defect);
      EXPECT_FALSE(decoded.ok()) << "flip at byte " << byte << " bit " << bit;
      EXPECT_TRUE(decoded.status().IsDataLoss());
      EXPECT_NE(defect, df::BlockDefect::kNone);
    }
  }
}

TEST(BlockFormatTest, ClassifiesDefectShapes) {
  const std::vector<uint8_t> payload = PatternPayload(32);
  std::vector<uint8_t> frame;
  df::EncodeBlockFrame(payload, /*seq=*/4, &frame);
  df::BlockDefect defect = df::BlockDefect::kNone;

  // Trailing garbage: a partial overwrite left bytes beyond the frame.
  std::vector<uint8_t> garbage = frame;
  garbage.push_back(0xAB);
  EXPECT_TRUE(df::DecodeBlockFrame(garbage.data(), garbage.size(), -1,
                                   &defect)
                  .status()
                  .IsDataLoss());
  EXPECT_EQ(defect, df::BlockDefect::kTrailingGarbage);
  EXPECT_FALSE(df::IsTornWriteDefect(defect));

  // Torn tail: right length, wrong footer sentinel.
  std::vector<uint8_t> torn = frame;
  torn[torn.size() - 1] ^= 0xFF;
  EXPECT_TRUE(
      df::DecodeBlockFrame(torn.data(), torn.size(), -1, &defect)
          .status()
          .IsDataLoss());
  EXPECT_EQ(defect, df::BlockDefect::kBadFooter);
  EXPECT_TRUE(df::IsTornWriteDefect(defect));

  // Unknown version with an intact (recomputed) header CRC.
  std::vector<uint8_t> version = frame;
  version[4] = 0x7F;
  const uint32_t header_crc = Crc32c(version.data(), 28);
  std::memcpy(version.data() + 28, &header_crc, sizeof(header_crc));
  EXPECT_TRUE(df::DecodeBlockFrame(version.data(), version.size(), -1,
                                   &defect)
                  .status()
                  .IsDataLoss());
  EXPECT_EQ(defect, df::BlockDefect::kBadVersion);

  // Stale generation: internally consistent frame, wrong expected seq.
  EXPECT_TRUE(df::DecodeBlockFrame(frame.data(), frame.size(),
                                   /*expected_seq=*/5, &defect)
                  .status()
                  .IsDataLoss());
  EXPECT_EQ(defect, df::BlockDefect::kStale);
  EXPECT_FALSE(df::IsTornWriteDefect(defect));
}

// ---------------------------------------------------------------------------
// SpillManager: durable frames + verify-on-read under injected corruption

std::string FreshSpillDir(const std::string& tag) {
  const std::string dir = "/tmp/vista_integrity_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

RetryPolicy FastRetries(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_backoff_ms = 0.0;
  return policy;
}

TEST(SpillIntegrityTest, CleanRoundTripWritesFramedBlocks) {
  df::SpillManager spill(FreshSpillDir("clean"));
  const std::vector<uint8_t> blob = PatternPayload(200);
  ASSERT_TRUE(spill.Write(3, blob).ok());
  // The on-disk file is a framed block, not the raw payload.
  bool found = false;
  for (const auto& entry :
       std::filesystem::directory_iterator("/tmp/vista_integrity_clean")) {
    found = true;
    EXPECT_EQ(std::filesystem::file_size(entry.path()),
              blob.size() + df::kBlockFrameOverhead);
  }
  EXPECT_TRUE(found);
  auto read = spill.Read(3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, blob);
  EXPECT_EQ(spill.blocks_verified(), 1);
  EXPECT_EQ(spill.checksum_failures(), 0);
  // Byte counters meter payload bytes, excluding frame overhead.
  EXPECT_EQ(spill.bytes_written(), static_cast<int64_t>(blob.size()));
  EXPECT_EQ(spill.bytes_read(), static_cast<int64_t>(blob.size()));
}

TEST(SpillIntegrityTest, InjectedBitFlipIsCaughtOnRead) {
  df::SpillManager spill(FreshSpillDir("flip"));
  FaultInjectorConfig config;
  config.spill_bit_flip_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(3));

  ASSERT_TRUE(spill.Write(11, PatternPayload(100)).ok());
  EXPECT_EQ(injector.injected(FaultSite::kSpillBitFlip), 1);
  auto read = spill.Read(11);
  ASSERT_FALSE(read.ok());
  // Corruption is kDataLoss — non-retryable by design: a corrupt block
  // stays corrupt on re-read, so retrying would only burn time.
  EXPECT_TRUE(read.status().IsDataLoss());
  EXPECT_EQ(spill.checksum_failures(), 1);
  EXPECT_EQ(spill.torn_writes_detected(), 0);
  EXPECT_EQ(spill.io_retries(), 0);
}

TEST(SpillIntegrityTest, InjectedTornWriteIsCaughtOnRead) {
  df::SpillManager spill(FreshSpillDir("torn"));
  FaultInjectorConfig config;
  config.spill_torn_write_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(3));

  ASSERT_TRUE(spill.Write(12, PatternPayload(100)).ok());
  EXPECT_EQ(injector.injected(FaultSite::kSpillTornWrite), 1);
  auto read = spill.Read(12);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDataLoss());
  EXPECT_EQ(spill.checksum_failures(), 1);
  EXPECT_EQ(spill.torn_writes_detected(), 1);
}

TEST(SpillIntegrityTest, InjectedStaleReadBackIsCaughtBySequenceCheck) {
  df::SpillManager spill(FreshSpillDir("stale"));
  FaultInjectorConfig config;
  config.spill_stale_read_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(3));

  // First write of a key cannot be stale (there is no previous generation).
  const std::vector<uint8_t> gen1 = PatternPayload(80);
  ASSERT_TRUE(spill.Write(13, gen1).ok());
  EXPECT_EQ(injector.injected(FaultSite::kSpillStaleRead), 0);
  auto first = spill.Read(13);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, gen1);

  // The overwrite "succeeds" but the device serves the old generation; the
  // frame is internally consistent, so only the sequence check catches it.
  ASSERT_TRUE(spill.Write(13, PatternPayload(90)).ok());
  EXPECT_EQ(injector.injected(FaultSite::kSpillStaleRead), 1);
  auto read = spill.Read(13);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDataLoss());
  EXPECT_EQ(spill.torn_writes_detected(), 0);
}

TEST(SpillIntegrityTest, EnospcFailsTheWriteUpFrontAndRetries) {
  df::SpillManager spill(FreshSpillDir("enospc"));
  FaultInjectorConfig config;
  config.spill_enospc_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(3));

  Status st = spill.Write(14, PatternPayload(50));
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(spill.io_retries(), 2);
  EXPECT_EQ(spill.num_spills(), 0);
  EXPECT_TRUE(spill.Read(14).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Async writer: the silent-failure window (satellite)

TEST(SpillAsyncErrorTest, AsyncWriteFailureIsStickyPerKey) {
  df::SpillManager spill(FreshSpillDir("sticky"));
  FaultInjectorConfig config;
  config.spill_write_failure_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(2));

  ASSERT_TRUE(spill.WriteAsync(5, PatternPayload(40)).ok());
  // The failure surfaces on Read — never a silent NotFound.
  EXPECT_TRUE(spill.Read(5).status().IsIOError());
  // ...and on Flush, exactly once per error.
  EXPECT_TRUE(spill.Flush().IsIOError());
  EXPECT_TRUE(spill.Flush().ok());
  // The per-key latch survives Flush: the key stays poisoned...
  EXPECT_TRUE(spill.Read(5).status().IsIOError());
  // ...until a successful rewrite clears it.
  FaultInjectorConfig clean;
  injector.Configure(clean);
  const std::vector<uint8_t> blob = PatternPayload(44);
  ASSERT_TRUE(spill.Write(5, blob).ok());
  auto read = spill.Read(5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, blob);
}

TEST(SpillAsyncErrorTest, FailedOverwriteNeverServesThePreviousGeneration) {
  // The regression this satellite pins: an async overwrite fails after the
  // last Append but before Finish/Flush. The old bug window would serve the
  // previous generation on Read as if the overwrite never happened.
  df::SpillManager spill(FreshSpillDir("overwrite"));
  FaultInjector injector;  // Inert for the clean first generation.
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(2));

  ASSERT_TRUE(spill.Write(9, PatternPayload(64)).ok());

  FaultInjectorConfig fail_all;
  fail_all.spill_write_failure_rate = 1.0;
  injector.Configure(fail_all);
  ASSERT_TRUE(spill.WriteAsync(9, PatternPayload(65)).ok());

  // Both the next read of the key AND Finish/Flush must surface the error;
  // serving generation 1 here would be a silent wrong result.
  EXPECT_TRUE(spill.Read(9).status().IsIOError());
  EXPECT_TRUE(spill.Flush().IsIOError());

  // Remove clears the latch; the key reads as absent, not as the old blob.
  spill.Remove(9);
  EXPECT_TRUE(spill.Read(9).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Engine: in-memory blob rot is caught before header-scan / decode paths

df::Table MakeNumbersTable(df::Engine* engine, int n, int partitions) {
  std::vector<df::Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), static_cast<float>(2 * i)};
    records.push_back(std::move(r));
  }
  return engine->MakeTable(std::move(records), partitions).value();
}

df::Engine::MapPartitionsFn DoubleFirstFeature() {
  return [](std::vector<df::Record> records)
             -> Result<std::vector<df::Record>> {
    for (df::Record& r : records) r.struct_features[0] *= 2.0f;
    return records;
  };
}

void CorruptResidentBlob(const df::Table& table) {
  for (const auto& p : table.partitions) {
    if (p->resident() && p->format() == df::PersistenceFormat::kSerialized) {
      std::vector<uint8_t>* blob = p->mutable_blob_for_testing();
      ASSERT_FALSE(blob->empty());
      (*blob)[blob->size() / 2] ^= 0x20;
      return;
    }
  }
  FAIL() << "no serialized-resident partition to corrupt";
}

TEST(EngineIntegrityTest, RottedBlobWithoutLineageFailsAsDataLoss) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  config.enable_lineage = false;
  df::Engine engine(config);
  df::Table table = MakeNumbersTable(&engine, 120, 4);
  ASSERT_TRUE(engine.Persist(&table, df::PersistenceFormat::kSerialized).ok());
  CorruptResidentBlob(table);

  auto rows = engine.Collect(table);
  ASSERT_FALSE(rows.ok());
  // Base tables have no lineage: the corruption must surface as kDataLoss
  // to the caller — never a silent wrong result, never an endless retry.
  EXPECT_TRUE(rows.status().IsDataLoss()) << rows.status();
  const auto integrity = engine.stats().integrity;
  EXPECT_GE(integrity.checksum_failures, 1);
  EXPECT_EQ(integrity.recomputes_triggered, 0);
}

TEST(EngineIntegrityTest, RottedBlobWithLineageIsRecomputedExactly) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  df::Table in = MakeNumbersTable(&engine, 120, 4);
  auto derived = engine.MapPartitions(in, DoubleFirstFeature());
  ASSERT_TRUE(derived.ok());
  ASSERT_TRUE(
      engine.Persist(&*derived, df::PersistenceFormat::kSerialized).ok());
  CorruptResidentBlob(*derived);

  auto rows = engine.Collect(*derived);
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::vector<float> values(120, -1.0f);
  for (const df::Record& r : *rows) values[r.id] = r.struct_features[0];
  for (int i = 0; i < 120; ++i) {
    EXPECT_FLOAT_EQ(values[i], 2.0f * i);
  }
  const auto integrity = engine.stats().integrity;
  EXPECT_GE(integrity.checksum_failures, 1);
  EXPECT_GE(integrity.recomputes_triggered, 1);
  EXPECT_GT(integrity.blocks_verified, 0);
}

TEST(EngineIntegrityTest, ZeroDecodeShuffleFallsBackOnCorruptInput) {
  // Repartition of serialized-resident tables takes the zero-decode
  // header-scan path; a corrupt blob must divert it to the decoding path
  // (where lineage recomputation heals the partition) instead of splicing
  // rotted bytes into the output.
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  df::Table in = MakeNumbersTable(&engine, 120, 4);
  auto derived = engine.MapPartitions(in, DoubleFirstFeature());
  ASSERT_TRUE(derived.ok());
  ASSERT_TRUE(
      engine.Persist(&*derived, df::PersistenceFormat::kSerialized).ok());
  CorruptResidentBlob(*derived);

  auto repartitioned = engine.Repartition(*derived, 3);
  ASSERT_TRUE(repartitioned.ok()) << repartitioned.status();
  auto rows = engine.Collect(*repartitioned);
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::vector<float> values(120, -1.0f);
  for (const df::Record& r : *rows) values[r.id] = r.struct_features[0];
  for (int i = 0; i < 120; ++i) {
    EXPECT_FLOAT_EQ(values[i], 2.0f * i);
  }
  const auto integrity = engine.stats().integrity;
  EXPECT_GE(integrity.checksum_failures, 1);
  EXPECT_GE(integrity.recomputes_triggered, 1);
}

// ---------------------------------------------------------------------------
// FeatureViewCache: never resume inference from rotted features

TEST(ViewCacheIntegrityTest, CorruptViewIsDroppedNotServed) {
  df::MemoryBudgets budgets;
  budgets.storage = 64 << 20;
  df::MemoryManager memory(budgets);
  obs::Registry registry;
  serve::FeatureViewCache cache(&memory, /*capacity_bytes=*/-1, &registry);

  df::EngineConfig ec;
  df::Engine engine(ec);
  serve::MaterializedView view;
  view.table = MakeNumbersTable(&engine, 60, 2);
  view.layer = 3;
  for (const auto& p : view.table.partitions) {
    ASSERT_TRUE(p->ConvertTo(df::PersistenceFormat::kSerialized).ok());
  }
  ASSERT_TRUE(cache.Insert("alexnet", /*fingerprint=*/42, view,
                           /*recompute_flops=*/1 << 20));
  ASSERT_TRUE(cache.Lookup("alexnet", 42, 5).has_value());

  // Rot one partition of the cached view in place (the cache shares the
  // partitions with `view` via shared_ptr).
  std::vector<uint8_t>* blob =
      view.table.partitions[0]->mutable_blob_for_testing();
  ASSERT_FALSE(blob->empty());
  (*blob)[blob->size() / 3] ^= 0x01;

  // The lookup verifies before handing the view out, drops the corrupt
  // entry, and reports a miss — resuming from it would poison every layer
  // downstream.
  EXPECT_FALSE(cache.Lookup("alexnet", 42, 5).has_value());
  EXPECT_EQ(cache.num_views(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
  EXPECT_EQ(memory.Used(df::MemoryRegion::kStorage), 0);
  EXPECT_EQ(registry.counter("serve.view_cache.corrupt_drops")->value(), 1);
  EXPECT_GE(registry.counter("integrity.checksum_failures")->value(), 1);
}

// ---------------------------------------------------------------------------
// End-to-end corruption chaos: injected spill-block corruption heals through
// lineage with exact integrity accounting (the CI matrix runs this under
// several seeds via VISTA_CHAOS_SEED).

uint64_t ChaosSeed() {
  const char* env = std::getenv("VISTA_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 17;
}

TEST(CorruptionChaosTest, InjectedCorruptionHealsWithExactAccounting) {
  const uint64_t seed = ChaosSeed();

  // Clean baseline on an unconstrained engine.
  df::EngineConfig clean_config;
  clean_config.cpus_per_worker = 4;
  df::Engine clean(clean_config);
  df::Table clean_in = MakeNumbersTable(&clean, 400, 8);
  auto clean_out = clean.MapPartitions(clean_in, DoubleFirstFeature());
  ASSERT_TRUE(clean_out.ok());
  auto clean_rows = clean.Collect(*clean_out);
  ASSERT_TRUE(clean_rows.ok());
  std::vector<float> expected(400, -1.0f);
  for (const df::Record& r : *clean_rows) {
    expected[r.id] = r.struct_features[0];
  }

  // Faulted engine: a storage budget tiny enough that Persist spills most
  // partitions, with bit-flip and torn-write mutations armed.
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  config.budgets.storage = 2 * 1024;
  config.faults.seed = seed;
  config.faults.spill_bit_flip_rate = 0.5;
  config.faults.spill_torn_write_rate = 0.3;
  config.retry.max_attempts = 3;
  config.retry.base_backoff_ms = 0.0;
  df::Engine engine(config);
  df::Table in = MakeNumbersTable(&engine, 400, 8);
  auto derived = engine.MapPartitions(in, DoubleFirstFeature());
  ASSERT_TRUE(derived.ok());
  ASSERT_TRUE(
      engine.Persist(&*derived, df::PersistenceFormat::kSerialized).ok());
  ASSERT_GT(engine.stats().num_spills, 0);

  // Every corruption drawn so far sits in a durably-written block. Disarm
  // the injector before reading back: evictions during Collect re-spill
  // restored partitions, and new mutations on those (never re-read) blocks
  // would break the exact-accounting equality below.
  const int64_t injected_flips =
      engine.fault_injector().injected(FaultSite::kSpillBitFlip);
  const int64_t injected_torn =
      engine.fault_injector().injected(FaultSite::kSpillTornWrite);
  FaultInjectorConfig disarmed;
  disarmed.seed = seed;
  engine.fault_injector().Configure(disarmed);

  auto rows = engine.Collect(*derived);
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::vector<float> values(400, -1.0f);
  for (const df::Record& r : *rows) values[r.id] = r.struct_features[0];
  // Zero silent wrong results: every value matches the clean baseline
  // bit for bit, through however many lineage recomputes it took.
  EXPECT_EQ(values, expected);

  const auto integrity = engine.stats().integrity;
  // Non-vacuity: the seed must actually have corrupted something. Seeds
  // 1-5 and the default 17 all do; P(no fault) < 1e-3 per spilled block
  // set at these rates.
  ASSERT_GT(injected_flips + injected_torn, 0);
  // Exact accounting: each corrupt block was read exactly once, detected
  // exactly once, and healed by exactly one lineage recompute.
  EXPECT_EQ(integrity.checksum_failures, injected_flips + injected_torn);
  EXPECT_EQ(integrity.torn_writes_detected, injected_torn);
  EXPECT_EQ(integrity.recomputes_triggered, integrity.checksum_failures);
  EXPECT_GT(integrity.blocks_verified, 0);

  // Determinism: the same seed draws the same corruption schedule.
  df::Engine replay(config);
  df::Table replay_in = MakeNumbersTable(&replay, 400, 8);
  auto replay_out = replay.MapPartitions(replay_in, DoubleFirstFeature());
  ASSERT_TRUE(replay_out.ok());
  ASSERT_TRUE(
      replay.Persist(&*replay_out, df::PersistenceFormat::kSerialized).ok());
  EXPECT_EQ(replay.fault_injector().injected(FaultSite::kSpillBitFlip),
            injected_flips);
  EXPECT_EQ(replay.fault_injector().injected(FaultSite::kSpillTornWrite),
            injected_torn);
}

}  // namespace
}  // namespace vista
