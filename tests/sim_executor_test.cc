#include <gtest/gtest.h>

#include "vista/experiments.h"

namespace vista {
namespace {

ExperimentSetup MakeSetup(PdSystem pd, dl::KnownCnn cnn, bool amazon = false) {
  ExperimentSetup setup;
  setup.pd = pd;
  setup.cnn = cnn;
  setup.num_layers = PaperNumLayers(cnn);
  setup.data = amazon ? AmazonDataStats() : FoodsDataStats();
  return setup;
}

double Minutes(const ApproachResult& r) {
  return (r.result.total_seconds + r.pre_mat_seconds) / 60.0;
}

TEST(SimExecutorTest, StagesFollowThePlan) {
  ExperimentSetup setup = MakeSetup(PdSystem::kSparkLike,
                                dl::KnownCnn::kAlexNet);
  auto roster = Roster::Default();
  ASSERT_TRUE(roster.ok());
  auto entry = roster->Lookup(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(entry.ok());
  auto workload =
      TransferWorkload::TopLayers(*roster, dl::KnownCnn::kAlexNet, 4);
  ASSERT_TRUE(workload.ok());
  auto plan = CompilePlan(LogicalPlan::kStaged, *workload);
  ASSERT_TRUE(plan.ok());

  SimExecutorConfig config;
  config.env = setup.env;
  config.node = setup.node;
  config.profile = SparkDefaultProfile(setup.env, 4);
  SimExecutor executor(*entry);
  auto stages = executor.BuildStages(*plan, *workload, setup.data, config);
  ASSERT_TRUE(stages.ok());
  // Staged/AJ over 4 layers: read x2, 4 inference, 1 join, 4 train, plus
  // persists/releases.
  int inference = 0, join = 0, train = 0;
  for (const auto& s : *stages) {
    if (s.name.rfind("inference:", 0) == 0) ++inference;
    if (s.name.rfind("join:", 0) == 0) ++join;
    if (s.name.rfind("train:", 0) == 0) ++train;
    if (s.name.rfind("inference:", 0) == 0) {
      EXPECT_TRUE(s.uses_dl);
      EXPECT_GT(s.dl_mem_per_thread, 0);
    }
  }
  EXPECT_EQ(inference, 4);
  EXPECT_EQ(join, 1);
  EXPECT_EQ(train, 4);
}

TEST(SimExecutorTest, LazySimulatesRedundantFlops) {
  ExperimentSetup setup = MakeSetup(PdSystem::kSparkLike,
                                dl::KnownCnn::kAlexNet);
  DrillDownConfig lazy;
  lazy.plan = LogicalPlan::kLazy;
  DrillDownConfig staged;
  staged.plan = LogicalPlan::kStaged;
  auto lazy_result = RunDrillDown(setup, lazy);
  auto staged_result = RunDrillDown(setup, staged);
  ASSERT_TRUE(lazy_result.ok());
  ASSERT_TRUE(staged_result.ok());
  ASSERT_FALSE(lazy_result->crashed());
  ASSERT_FALSE(staged_result->crashed());
  EXPECT_GT(lazy_result->total_seconds, staged_result->total_seconds * 1.5);
}

// ---- The Figure 6 crash matrix (Section 5.1).

TEST(Figure6Test, SparkOnlyVggLazyCrashes) {
  for (bool amazon : {false, true}) {
    for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                     dl::KnownCnn::kResNet50}) {
      ExperimentSetup setup = MakeSetup(PdSystem::kSparkLike, cnn, amazon);
      for (const char* approach : {"Lazy-5", "Lazy-7"}) {
        auto r = RunApproach(setup, approach);
        ASSERT_TRUE(r.ok());
        if (cnn == dl::KnownCnn::kVgg16) {
          EXPECT_TRUE(r->result.crashed())
              << approach << " " << dl::KnownCnnToString(cnn);
          EXPECT_EQ(r->result.crash, sim::CrashScenario::kDlMemoryBlowup);
        } else {
          EXPECT_FALSE(r->result.crashed())
              << approach << " " << dl::KnownCnnToString(cnn);
        }
      }
      // Lazy-1 never crashes on Spark.
      auto lazy1 = RunApproach(setup, "Lazy-1");
      ASSERT_TRUE(lazy1.ok());
      EXPECT_FALSE(lazy1->result.crashed());
    }
  }
}

TEST(Figure6Test, IgniteLazy7CrashesForAllCnnsOnAmazon) {
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    ExperimentSetup setup = MakeSetup(PdSystem::kIgniteLike, cnn, true);
    auto r = RunApproach(setup, "Lazy-7");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->result.crashed()) << dl::KnownCnnToString(cnn);
  }
}

TEST(Figure6Test, IgniteResNetLazy7CrashesOnFoodsToo) {
  auto r = RunApproach(MakeSetup(PdSystem::kIgniteLike, dl::KnownCnn::kResNet50),
                       "Lazy-7");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.crashed());
  EXPECT_EQ(r->result.crash, sim::CrashScenario::kDlMemoryBlowup);
  // Lazy-5 and AlexNet Lazy-7 survive on Foods/Ignite.
  auto lazy5 = RunApproach(
      MakeSetup(PdSystem::kIgniteLike, dl::KnownCnn::kResNet50), "Lazy-5");
  ASSERT_TRUE(lazy5.ok());
  EXPECT_FALSE(lazy5->result.crashed());
  auto alex = RunApproach(
      MakeSetup(PdSystem::kIgniteLike, dl::KnownCnn::kAlexNet), "Lazy-7");
  ASSERT_TRUE(alex.ok());
  EXPECT_FALSE(alex->result.crashed());
}

TEST(Figure6Test, EagerCrashesOnIgniteAmazonResNet) {
  // Intermediate data exhausts total memory in memory-only mode.
  auto r = RunApproach(
      MakeSetup(PdSystem::kIgniteLike, dl::KnownCnn::kResNet50, true), "Eager");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.crashed());
  EXPECT_EQ(r->result.crash, sim::CrashScenario::kStorageExhausted);
}

TEST(Figure6Test, EagerSpillsHeavilyOnSparkAmazonResNet) {
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kResNet50, true);
  auto eager = RunApproach(setup, "Eager");
  auto vista = RunApproach(setup, "Vista");
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(vista.ok());
  ASSERT_FALSE(eager->result.crashed());
  ASSERT_FALSE(vista->result.crashed());
  // Eager pays for disk spills of the all-layers table (Section 5.1).
  EXPECT_GT(eager->result.spill_bytes_written,
            10 * vista->result.spill_bytes_written);
  EXPECT_GT(eager->result.total_seconds, 2 * vista->result.total_seconds);
}

TEST(Figure6Test, EagerComparableToVistaWhenDataFits) {
  // "When Eager does not crash and the intermediate data fits in memory,
  // its efficiency is comparable to Vista" (Section 5.1).
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kAlexNet);
  auto eager = RunApproach(setup, "Eager");
  auto vista = RunApproach(setup, "Vista");
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(vista.ok());
  EXPECT_LT(Minutes(*eager), Minutes(*vista) * 1.5);
  EXPECT_GT(Minutes(*eager), Minutes(*vista) * 0.7);
}

TEST(Figure6Test, VistaNeverCrashesAndBeatsLazy) {
  // The headline: Vista completes everywhere and is 58%-92% faster than
  // the Lazy baselines that complete.
  for (auto pd : {PdSystem::kSparkLike, PdSystem::kIgniteLike}) {
    for (bool amazon : {false, true}) {
      for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                       dl::KnownCnn::kResNet50}) {
        ExperimentSetup setup = MakeSetup(pd, cnn, amazon);
        auto vista = RunApproach(setup, "Vista");
        ASSERT_TRUE(vista.ok()) << dl::KnownCnnToString(cnn);
        EXPECT_FALSE(vista->result.crashed())
            << PdSystemToString(pd) << " " << dl::KnownCnnToString(cnn)
            << (amazon ? " Amazon" : " Foods") << ": "
            << vista->result.status.ToString();
        auto lazy1 = RunApproach(setup, "Lazy-1");
        ASSERT_TRUE(lazy1.ok());
        if (!lazy1->result.crashed()) {
          const double reduction = 1.0 - Minutes(*vista) / Minutes(*lazy1);
          EXPECT_GT(reduction, 0.55)
              << PdSystemToString(pd) << " " << dl::KnownCnnToString(cnn);
          EXPECT_LT(reduction, 0.95);
        }
      }
    }
  }
}

TEST(Figure6Test, PreMatDoesNotCrashButIsSlowerThanVista) {
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kResNet50}) {
    ExperimentSetup setup = MakeSetup(PdSystem::kSparkLike, cnn);
    auto pre = RunApproach(setup, "Lazy-5+Pre-mat");
    auto vista = RunApproach(setup, "Vista");
    ASSERT_TRUE(pre.ok());
    ASSERT_TRUE(vista.ok());
    EXPECT_FALSE(pre->result.crashed());
    EXPECT_GT(pre->pre_mat_seconds, 0);
    EXPECT_GT(Minutes(*pre), Minutes(*vista));
  }
}

// ---- Figure 7(A): single-node GPU.

ExperimentSetup GpuSetup(dl::KnownCnn cnn) {
  ExperimentSetup setup = MakeSetup(PdSystem::kSparkLike, cnn);
  setup.env.num_nodes = 1;
  setup.env.gpu_memory_bytes = GiB(12);
  setup.node.gpu_memory_bytes = GiB(12);
  setup.node.disk_read_mbps = 500;  // SSD in the GPU box.
  setup.node.disk_write_mbps = 450;
  setup.use_gpu = true;
  return setup;
}

TEST(Figure7Test, GpuVggLazyCrashesOthersSurvive) {
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    for (const char* approach : {"Lazy-5", "Lazy-7"}) {
      auto r = RunApproach(GpuSetup(cnn), approach);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->result.crashed(), cnn == dl::KnownCnn::kVgg16)
          << approach << " " << dl::KnownCnnToString(cnn);
    }
  }
}

TEST(Figure7Test, GpuVistaNeverCrashes) {
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    auto r = RunApproach(GpuSetup(cnn), "Vista");
    ASSERT_TRUE(r.ok()) << dl::KnownCnnToString(cnn);
    EXPECT_FALSE(r->result.crashed()) << dl::KnownCnnToString(cnn);
  }
}

// ---- Figure 9 shapes: logical plans vs scale.

TEST(Figure9Test, EagerDegradesAtScaleStagedDoesNot) {
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kResNet50);
  setup.data = FoodsDataStats(8.0);  // 8X drill-down scale.
  DrillDownConfig eager;
  eager.plan = LogicalPlan::kEager;
  DrillDownConfig staged;
  staged.plan = LogicalPlan::kStaged;
  auto e = RunDrillDown(setup, eager);
  auto s = RunDrillDown(setup, staged);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(s.ok());
  ASSERT_FALSE(s->crashed());
  if (!e->crashed()) {
    // Eager's all-layer table spills; staged stays ahead (Fig. 9(4)).
    EXPECT_GT(e->total_seconds, 1.5 * s->total_seconds);
    EXPECT_GT(e->spill_bytes_written, s->spill_bytes_written);
  }
}

TEST(Figure9Test, PlansComparableAtSmallScale) {
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kAlexNet);
  DrillDownConfig eager;
  eager.plan = LogicalPlan::kEager;
  DrillDownConfig staged;
  staged.plan = LogicalPlan::kStaged;
  auto e = RunDrillDown(setup, eager);
  auto s = RunDrillDown(setup, staged);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_LT(std::abs(e->total_seconds - s->total_seconds),
            0.3 * s->total_seconds);
}

// ---- Figure 10 shapes: physical plans.

TEST(Figure10Test, BroadcastCrashesWithManyStructFeatures) {
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kAlexNet);
  setup.data = FoodsDataStats(8.0);
  setup.data.num_struct_features = 10000;  // Fig. 10(3) rightmost point.
  DrillDownConfig broadcast;
  broadcast.join = df::JoinStrategy::kBroadcast;
  auto b = RunDrillDown(setup, broadcast);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->crashed());
  DrillDownConfig shuffle;
  shuffle.join = df::JoinStrategy::kShuffleHash;
  auto s = RunDrillDown(setup, shuffle);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->crashed());
}

TEST(Figure10Test, SerializedHelpsWhenSpilling) {
  ExperimentSetup setup =
      MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kResNet50);
  setup.data = FoodsDataStats(8.0);
  DrillDownConfig deser;
  deser.persistence = df::PersistenceFormat::kDeserialized;
  DrillDownConfig ser;
  ser.persistence = df::PersistenceFormat::kSerialized;
  auto d = RunDrillDown(setup, deser);
  auto s = RunDrillDown(setup, ser);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(s.ok());
  ASSERT_FALSE(s->crashed());
  if (!d->crashed()) {
    EXPECT_LE(s->spill_bytes_written, d->spill_bytes_written);
  }
}

// ---- Figure 12 shapes: scalability.

TEST(Figure12Test, NearLinearSpeedupForHeavyCnns) {
  DrillDownConfig config;
  auto minutes_at = [&](int nodes) {
    ExperimentSetup setup =
        MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kResNet50);
    setup.env.num_nodes = nodes;
    auto r = RunDrillDown(setup, config);
    EXPECT_TRUE(r.ok());
    return r->total_seconds;
  };
  const double t1 = minutes_at(1);
  const double t8 = minutes_at(8);
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 5.5);
  EXPECT_LT(speedup, 13.0);  // Appendix C: ResNet50 is slightly super-linear (single-node spills).
}

TEST(Figure12Test, ScaleupStaysFlat) {
  DrillDownConfig config;
  auto seconds = [&](int nodes, double scale) {
    ExperimentSetup setup =
        MakeSetup(PdSystem::kSparkLike, dl::KnownCnn::kResNet50);
    setup.env.num_nodes = nodes;
    setup.data = FoodsDataStats(scale);
    auto r = RunDrillDown(setup, config);
    EXPECT_TRUE(r.ok());
    return r->total_seconds;
  };
  const double t1 = seconds(1, 1.0);
  const double t8 = seconds(8, 8.0);
  EXPECT_NEAR(t8 / t1, 1.0, 0.35);
}

}  // namespace
}  // namespace vista
