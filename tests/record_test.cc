#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "dataflow/engine.h"
#include "dataflow/record.h"

namespace vista::df {
namespace {

Record MakeRecord(int64_t id, bool with_image, int num_features) {
  Record r;
  r.id = id;
  r.struct_features = {1.0f, 2.5f, -3.0f};
  if (with_image) {
    Rng rng(id);
    r.set_image(Tensor::RandomGaussian(Shape{3, 4, 4}, &rng));
  }
  for (int i = 0; i < num_features; ++i) {
    Tensor t(Shape{8});
    t.set(i % 8, 1.5f);
    r.features.Append(std::move(t));
  }
  return r;
}

TEST(RecordTest, RoundTripPlain) {
  Record r = MakeRecord(42, false, 0);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(back->id, 42);
  EXPECT_EQ(back->struct_features, r.struct_features);
  EXPECT_FALSE(back->has_image());
  EXPECT_EQ(back->features.size(), 0);
}

TEST(RecordTest, RoundTripWithImageAndFeatures) {
  Record r = MakeRecord(7, true, 3);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->has_image());
  EXPECT_TRUE(back->image().AllClose(r.image()));
  ASSERT_EQ(back->features.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(back->features.at(i).AllClose(r.features.at(i)));
  }
}

TEST(RecordTest, MultipleRecordsInOneBuffer) {
  std::vector<uint8_t> buf;
  for (int i = 0; i < 5; ++i) SerializeRecord(MakeRecord(i, i % 2, i), &buf);
  size_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = DeserializeRecord(buf, &offset);
    ASSERT_TRUE(r.ok()) << "record " << i;
    EXPECT_EQ(r->id, i);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(RecordTest, SparseTensorsEncodeSmaller) {
  // A mostly-zero feature tensor must serialize smaller than a dense one.
  Record sparse;
  sparse.id = 1;
  Tensor t(Shape{1000});
  t.set(3, 1.0f);
  t.set(500, 2.0f);
  sparse.features.Append(t);

  Record dense;
  dense.id = 2;
  Rng rng(5);
  dense.features.Append(Tensor::RandomGaussian(Shape{1000}, &rng));

  std::vector<uint8_t> sparse_buf, dense_buf;
  SerializeRecord(sparse, &sparse_buf);
  SerializeRecord(dense, &dense_buf);
  EXPECT_LT(sparse_buf.size(), dense_buf.size() / 10);

  // And still round-trips exactly.
  size_t offset = 0;
  auto back = DeserializeRecord(sparse_buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->features.at(0).AllClose(t));
}

TEST(RecordTest, TruncatedBufferFails) {
  Record r = MakeRecord(9, true, 2);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  for (size_t cut : {size_t{0}, size_t{4}, buf.size() / 2, buf.size() - 1}) {
    std::vector<uint8_t> truncated(buf.begin(), buf.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(DeserializeRecord(truncated, &offset).ok())
        << "cut=" << cut;
  }
}

TEST(RecordTest, EstimateBytesFollowsTungstenLayout) {
  Record r;
  r.id = 1;
  r.struct_features = {1, 2, 3, 4};
  // 8 key + 8 bitmap + (8 header + 16 payload).
  EXPECT_EQ(EstimateRecordBytes(r), 8 + 8 + 8 + 16);
  r.features.Append(Tensor(Shape{10}));
  EXPECT_EQ(EstimateRecordBytes(r), 8 + 8 + 8 + 16 + 8 + 40);
}

// Property sweep: round-trips hold across feature densities.
class RecordDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(RecordDensityTest, RoundTripAtDensity) {
  const double density = GetParam();
  Rng rng(static_cast<uint64_t>(density * 1000));
  Record r;
  r.id = 77;
  r.struct_features = {0.5f};
  Tensor t(Shape{256});
  for (int64_t i = 0; i < 256; ++i) {
    if (rng.NextBool(density)) {
      t.set(i, static_cast<float>(rng.NextGaussian()));
    }
  }
  r.features.Append(t);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->features.at(0).AllClose(t));
}

INSTANTIATE_TEST_SUITE_P(Densities, RecordDensityTest,
                         ::testing::Values(0.0, 0.1, 0.13, 0.36, 0.5, 0.9,
                                           1.0));

TEST(RecordTest, SerializedBytesMatchesActualWireSize) {
  // SerializedRecordBytes must equal SerializeRecord's output exactly —
  // it both meters shuffle traffic and sizes the one-allocation encoder —
  // across empty, dense, sparse, and mixed records.
  std::vector<Record> records;
  records.push_back(Record{});
  records.push_back(MakeRecord(1, false, 0));
  records.push_back(MakeRecord(2, true, 3));
  for (double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    Rng rng(static_cast<uint64_t>(density * 100) + 3);
    Record r;
    r.id = 50;
    Tensor t(Shape{512});
    for (int64_t i = 0; i < 512; ++i) {
      if (rng.NextBool(density)) {
        t.set(i, static_cast<float>(rng.NextGaussian()));
      }
    }
    r.features.Append(std::move(t));
    records.push_back(std::move(r));
  }
  for (const Record& r : records) {
    std::vector<uint8_t> buf;
    SerializeRecord(r, &buf);
    EXPECT_EQ(static_cast<int64_t>(buf.size()), SerializedRecordBytes(r));
  }
}

TEST(RecordTest, SerializedBytesDivergesFromTungstenEstimateWhenSparse) {
  // The deserialized estimate ignores the sparse wire encoding by design;
  // the wire-size function must not.
  Record r;
  r.id = 1;
  Tensor t(Shape{1000});
  t.set(5, 1.0f);
  r.features.Append(std::move(t));
  EXPECT_GT(EstimateRecordBytes(r), 4000);  // Dense in-memory footprint.
  EXPECT_LT(SerializedRecordBytes(r), 100);  // One sparse pair on the wire.
}

TEST(RecordTest, EveryTruncatedPrefixIsRejectedCleanly) {
  // Exhaustive truncation fuzz: a record with an image and sparse/dense
  // features, cut at every possible byte — the decoder must fail (never
  // crash, never "succeed" on partial data).
  Record r = MakeRecord(123, true, 4);
  Rng rng(9);
  Tensor sparse(Shape{300});
  for (int64_t i = 0; i < 300; ++i) {
    if (rng.NextBool(0.2)) {
      sparse.set(i, static_cast<float>(rng.NextGaussian()));
    }
  }
  r.features.Append(std::move(sparse));
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<uint8_t> prefix(buf.begin(), buf.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(DeserializeRecord(prefix, &offset).ok()) << "cut=" << cut;
  }
}

TEST(RecordTest, RandomByteFlipsNeverCrashTheDecoder) {
  // Seeded corruption fuzz. Flipped bytes may land in float payloads (the
  // decode then "succeeds" with different values) or in structure (clean
  // failure); either way the decoder must stay inside the buffer.
  Record r = MakeRecord(55, true, 3);
  std::vector<uint8_t> clean;
  SerializeRecord(r, &clean);
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> buf = clean;
    const int flips = 1 + static_cast<int>(rng.NextUint64(4));
    for (int f = 0; f < flips; ++f) {
      buf[rng.NextUint64(buf.size())] ^=
          static_cast<uint8_t>(1 + rng.NextUint64(255));
    }
    size_t offset = 0;
    auto result = DeserializeRecord(buf, &offset);
    if (result.ok()) {
      EXPECT_LE(offset, buf.size());
    }
  }
}

// Hand-crafted corrupt headers: declared sizes wildly beyond the buffer
// must be rejected *before* any allocation is attempted (a corrupt tensor
// dim used to drive a multi-GB allocation).
class CorruptHeaderTest : public ::testing::Test {
 protected:
  void PutU32(uint32_t v) {
    const size_t n = buf_.size();
    buf_.resize(n + 4);
    std::memcpy(buf_.data() + n, &v, 4);
  }
  void PutI64(int64_t v) {
    const size_t n = buf_.size();
    buf_.resize(n + 8);
    std::memcpy(buf_.data() + n, &v, 8);
  }
  Status Decode() {
    size_t offset = 0;
    return DeserializeRecord(buf_, &offset).status();
  }
  std::vector<uint8_t> buf_;
};

TEST_F(CorruptHeaderTest, HugeTensorDimRejectedBeforeAllocation) {
  PutI64(1);   // id
  PutU32(0);   // n_struct
  PutU32(1);   // n_images
  PutU32(1);   // rank
  PutI64(int64_t{1} << 40);  // ~4 TiB of floats if allocated
  EXPECT_FALSE(Decode().ok());
}

TEST_F(CorruptHeaderTest, DimProductOverflowRejected) {
  PutI64(1);
  PutU32(0);
  PutU32(1);
  PutU32(3);               // rank 3
  PutI64(int64_t{1} << 31);
  PutI64(int64_t{1} << 31);
  PutI64(int64_t{1} << 31);  // Product wraps uint64 without the guard.
  EXPECT_FALSE(Decode().ok());
}

TEST_F(CorruptHeaderTest, HugeSparseNnzRejected) {
  PutI64(1);
  PutU32(0);
  PutU32(1);
  PutU32(1);   // rank
  PutI64(64);  // Legitimate small tensor...
  buf_.push_back(1);          // ...sparse encoding...
  PutI64(int64_t{1} << 61);   // ...with an absurd nnz.
  EXPECT_FALSE(Decode().ok());
}

TEST_F(CorruptHeaderTest, HugeStructCountRejectedBeforeAllocation) {
  PutI64(1);
  PutU32(0xFFFFFFFFu);  // 4 B count claiming ~16 GiB of floats.
  EXPECT_FALSE(Decode().ok());
}

TEST_F(CorruptHeaderTest, HugeTensorCountRejected) {
  PutI64(1);
  PutU32(0);
  PutU32(0);            // no images
  PutU32(0xFFFFFFFFu);  // implausible tensor count
  EXPECT_FALSE(Decode().ok());
}

TEST_F(CorruptHeaderTest, ScanRejectsSameHeadersAsDecode) {
  // ScanRecord applies the decoder's validation without allocating; the
  // same poisoned header must fail the scan too.
  PutI64(1);
  PutU32(0);
  PutU32(1);
  PutU32(1);                 // rank
  PutI64(int64_t{1} << 40);  // absurd dim
  size_t offset = 0;
  EXPECT_FALSE(ScanRecord(buf_, &offset).ok());
}

TEST(ScanRecordTest, ViewsMatchSerializedLayout) {
  // Scanning a multi-record buffer must walk the exact record boundaries:
  // each view's byte range re-encodes to the record it covers, ranges
  // tile the buffer with no gaps, and the counts match the decode.
  std::vector<Record> records;
  records.push_back(MakeRecord(10, true, 2));
  records.push_back(MakeRecord(11, false, 0));
  records.push_back(MakeRecord(12, false, 5));
  Rng rng(31);
  Record sparse;
  sparse.id = 13;
  Tensor t(Shape{400});
  for (int64_t i = 0; i < 400; ++i) {
    if (rng.NextBool(0.1)) t.set(i, static_cast<float>(rng.NextGaussian()));
  }
  sparse.features.Append(std::move(t));
  records.push_back(std::move(sparse));

  std::vector<uint8_t> buf;
  for (const Record& r : records) SerializeRecord(r, &buf);

  size_t offset = 0;
  size_t expected_begin = 0;
  for (const Record& r : records) {
    auto view = ScanRecord(buf, &offset);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->id, r.id);
    EXPECT_EQ(view->num_struct, r.struct_features.size());
    EXPECT_EQ(view->num_images, r.images.size());
    EXPECT_EQ(view->num_tensors, static_cast<uint32_t>(r.features.size()));
    EXPECT_EQ(view->begin, expected_begin);
    EXPECT_EQ(view->tensors_end, offset);
    // The view's range is exactly this record's serialization.
    std::vector<uint8_t> solo;
    SerializeRecord(r, &solo);
    ASSERT_EQ(view->wire_bytes(), solo.size());
    EXPECT_EQ(std::memcmp(buf.data() + view->begin, solo.data(), solo.size()),
              0);
    expected_begin = offset;
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(ScanRecordTest, EveryTruncatedPrefixIsRejectedCleanly) {
  Record r = MakeRecord(99, true, 3);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<uint8_t> prefix(buf.begin(), buf.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(ScanRecord(prefix, &offset).ok()) << "cut=" << cut;
  }
}

TEST(ScanRecordTest, RandomByteFlipsNeverEscapeTheBuffer) {
  Record r = MakeRecord(56, true, 3);
  std::vector<uint8_t> clean;
  SerializeRecord(r, &clean);
  Rng rng(2025);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> buf = clean;
    const int flips = 1 + static_cast<int>(rng.NextUint64(4));
    for (int f = 0; f < flips; ++f) {
      buf[rng.NextUint64(buf.size())] ^=
          static_cast<uint8_t>(1 + rng.NextUint64(255));
    }
    size_t offset = 0;
    auto view = ScanRecord(buf, &offset);
    if (view.ok()) {
      EXPECT_LE(offset, buf.size());
      EXPECT_LE(view->tensors_end, buf.size());
      EXPECT_GE(view->begin, size_t{0});
    }
  }
}

TEST(SpliceTest, MatchesMergeThenSerializeByteForByte) {
  // The zero-decode shuffle's correctness hinges on this identity:
  // splicing two serialized records is bit-identical to decoding them,
  // MergeRecords, and re-encoding — across every image placement and
  // feature-density combination.
  struct Case {
    bool left_image;
    bool right_image;
    int left_features;
    int right_features;
  };
  const Case cases[] = {
      {true, false, 0, 2}, {false, true, 1, 1}, {true, true, 2, 2},
      {false, false, 0, 0}, {true, false, 3, 0},
  };
  for (const Case& c : cases) {
    Record left = MakeRecord(7, c.left_image, c.left_features);
    Record right = MakeRecord(7, c.right_image, c.right_features);
    // Give the right side a sparse wide tensor so both encodings appear.
    Rng rng(71);
    Tensor t(Shape{600});
    for (int64_t i = 0; i < 600; ++i) {
      if (rng.NextBool(0.15)) t.set(i, static_cast<float>(rng.NextGaussian()));
    }
    right.features.Append(std::move(t));

    std::vector<uint8_t> left_buf, right_buf;
    SerializeRecord(left, &left_buf);
    SerializeRecord(right, &right_buf);
    size_t off = 0;
    auto lv = ScanRecord(left_buf, &off);
    ASSERT_TRUE(lv.ok());
    off = 0;
    auto rv = ScanRecord(right_buf, &off);
    ASSERT_TRUE(rv.ok());

    std::vector<uint8_t> spliced;
    SpliceJoinedRecord(left_buf, *lv, right_buf, *rv, &spliced);
    std::vector<uint8_t> merged;
    SerializeRecord(MergeRecords(left, right), &merged);
    EXPECT_EQ(spliced, merged)
        << "left_image=" << c.left_image << " right_image=" << c.right_image;
    EXPECT_EQ(static_cast<int64_t>(spliced.size()),
              SplicedJoinBytes(*lv, *rv));
  }
}

TEST(SpliceTest, AppendsAfterExistingBytes) {
  // Splice appends to a partially-filled output blob (the per-destination
  // splice loop reuses one buffer), leaving earlier bytes untouched.
  Record left = MakeRecord(3, true, 1);
  Record right = MakeRecord(3, false, 2);
  std::vector<uint8_t> left_buf, right_buf;
  SerializeRecord(left, &left_buf);
  SerializeRecord(right, &right_buf);
  size_t off = 0;
  auto lv = ScanRecord(left_buf, &off);
  off = 0;
  auto rv = ScanRecord(right_buf, &off);
  ASSERT_TRUE(lv.ok());
  ASSERT_TRUE(rv.ok());

  std::vector<uint8_t> out = {0xAB, 0xCD};
  SpliceJoinedRecord(left_buf, *lv, right_buf, *rv, &out);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0xCD);
  size_t offset = 2;
  auto back = DeserializeRecord(out, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, 3);
  EXPECT_EQ(offset, out.size());
}

}  // namespace
}  // namespace vista::df
