#include <gtest/gtest.h>

#include "common/random.h"
#include "dataflow/record.h"

namespace vista::df {
namespace {

Record MakeRecord(int64_t id, bool with_image, int num_features) {
  Record r;
  r.id = id;
  r.struct_features = {1.0f, 2.5f, -3.0f};
  if (with_image) {
    Rng rng(id);
    r.set_image(Tensor::RandomGaussian(Shape{3, 4, 4}, &rng));
  }
  for (int i = 0; i < num_features; ++i) {
    Tensor t(Shape{8});
    t.set(i % 8, 1.5f);
    r.features.Append(std::move(t));
  }
  return r;
}

TEST(RecordTest, RoundTripPlain) {
  Record r = MakeRecord(42, false, 0);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(back->id, 42);
  EXPECT_EQ(back->struct_features, r.struct_features);
  EXPECT_FALSE(back->has_image());
  EXPECT_EQ(back->features.size(), 0);
}

TEST(RecordTest, RoundTripWithImageAndFeatures) {
  Record r = MakeRecord(7, true, 3);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->has_image());
  EXPECT_TRUE(back->image().AllClose(r.image()));
  ASSERT_EQ(back->features.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(back->features.at(i).AllClose(r.features.at(i)));
  }
}

TEST(RecordTest, MultipleRecordsInOneBuffer) {
  std::vector<uint8_t> buf;
  for (int i = 0; i < 5; ++i) SerializeRecord(MakeRecord(i, i % 2, i), &buf);
  size_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = DeserializeRecord(buf, &offset);
    ASSERT_TRUE(r.ok()) << "record " << i;
    EXPECT_EQ(r->id, i);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(RecordTest, SparseTensorsEncodeSmaller) {
  // A mostly-zero feature tensor must serialize smaller than a dense one.
  Record sparse;
  sparse.id = 1;
  Tensor t(Shape{1000});
  t.set(3, 1.0f);
  t.set(500, 2.0f);
  sparse.features.Append(t);

  Record dense;
  dense.id = 2;
  Rng rng(5);
  dense.features.Append(Tensor::RandomGaussian(Shape{1000}, &rng));

  std::vector<uint8_t> sparse_buf, dense_buf;
  SerializeRecord(sparse, &sparse_buf);
  SerializeRecord(dense, &dense_buf);
  EXPECT_LT(sparse_buf.size(), dense_buf.size() / 10);

  // And still round-trips exactly.
  size_t offset = 0;
  auto back = DeserializeRecord(sparse_buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->features.at(0).AllClose(t));
}

TEST(RecordTest, TruncatedBufferFails) {
  Record r = MakeRecord(9, true, 2);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  for (size_t cut : {size_t{0}, size_t{4}, buf.size() / 2, buf.size() - 1}) {
    std::vector<uint8_t> truncated(buf.begin(), buf.begin() + cut);
    size_t offset = 0;
    EXPECT_FALSE(DeserializeRecord(truncated, &offset).ok())
        << "cut=" << cut;
  }
}

TEST(RecordTest, EstimateBytesFollowsTungstenLayout) {
  Record r;
  r.id = 1;
  r.struct_features = {1, 2, 3, 4};
  // 8 key + 8 bitmap + (8 header + 16 payload).
  EXPECT_EQ(EstimateRecordBytes(r), 8 + 8 + 8 + 16);
  r.features.Append(Tensor(Shape{10}));
  EXPECT_EQ(EstimateRecordBytes(r), 8 + 8 + 8 + 16 + 8 + 40);
}

// Property sweep: round-trips hold across feature densities.
class RecordDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(RecordDensityTest, RoundTripAtDensity) {
  const double density = GetParam();
  Rng rng(static_cast<uint64_t>(density * 1000));
  Record r;
  r.id = 77;
  r.struct_features = {0.5f};
  Tensor t(Shape{256});
  for (int64_t i = 0; i < 256; ++i) {
    if (rng.NextBool(density)) {
      t.set(i, static_cast<float>(rng.NextGaussian()));
    }
  }
  r.features.Append(t);
  std::vector<uint8_t> buf;
  SerializeRecord(r, &buf);
  size_t offset = 0;
  auto back = DeserializeRecord(buf, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->features.at(0).AllClose(t));
}

INSTANTIATE_TEST_SUITE_P(Densities, RecordDensityTest,
                         ::testing::Values(0.0, 0.1, 0.13, 0.36, 0.5, 0.9,
                                           1.0));

}  // namespace
}  // namespace vista::df
