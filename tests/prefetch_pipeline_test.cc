// Prefetch plane + layer pipeline: the read-side mirror of the async spill
// writer must never change results or fault accounting — only when the work
// happens. These tests pin:
//   - SpillManager hint lifecycle: hits, claim-backs, capacity/missing-key/
//     failed-key drops, dedup, and the optional memory-budget gate
//   - fault interaction: a corrupt prefetched block is dropped and
//     surfaces kDataLoss exactly like a sync read (counted once); an
//     overwrite invalidates any prefetched previous generation; delayed
//     I/O (FaultSite::kSpillReadDelay) stalls but never corrupts
//   - engine-level exact accounting: a corruption-chaos run is counter-
//     for-counter identical with prefetch on and off, and every accepted
//     hint is accounted for (hits + claimed + corrupt + dropped)
//   - executor determinism: materialized features are bit-identical at
//     prefetch depths {0, 1, 2, 4, auto}
//   - the ChoosePrefetchDepth policy and config validation
//
// Like the integrity suite, the chaos-style test re-runs under
// VISTA_CHAOS_SEED so CI can sweep corruption schedules.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "dataflow/engine.h"
#include "dataflow/spill.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/real_executor.h"

namespace vista {
namespace {

std::string FreshSpillDir(const std::string& tag) {
  const std::string dir = "/tmp/vista_prefetch_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<uint8_t> PatternPayload(size_t n, uint8_t salt = 0) {
  std::vector<uint8_t> blob(n);
  for (size_t i = 0; i < n; ++i) {
    blob[i] = static_cast<uint8_t>((i * 31 + salt) & 0xFF);
  }
  return blob;
}

RetryPolicy FastRetries(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.base_backoff_ms = 0.0;
  return policy;
}

/// Gives the background reader time to drain its queue. Pure wall-clock —
/// the assertions below never depend on winning this race, only some
/// "served as a hit" expectations do.
void LetReaderRun() {
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

uint64_t ChaosSeed() {
  const char* env = std::getenv("VISTA_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : 7;
}

// ---------------------------------------------------------------------------
// SpillManager: hint lifecycle

TEST(SpillPrefetchTest, HintsServeVerifiedBytesWithoutDoubleReads) {
  df::SpillManager spill(FreshSpillDir("hits"));
  spill.set_prefetch_capacity(8);
  int64_t payload_bytes = 0;
  for (int64_t key = 0; key < 4; ++key) {
    const std::vector<uint8_t> blob =
        PatternPayload(64 + 8 * static_cast<size_t>(key),
                       static_cast<uint8_t>(key));
    payload_bytes += static_cast<int64_t>(blob.size());
    ASSERT_TRUE(spill.Write(key, blob).ok());
  }
  for (int64_t key = 0; key < 4; ++key) spill.Prefetch(key);
  LetReaderRun();
  for (int64_t key = 0; key < 4; ++key) {
    auto read = spill.Read(key);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read, PatternPayload(64 + 8 * static_cast<size_t>(key),
                                    static_cast<uint8_t>(key)));
  }
  EXPECT_EQ(spill.prefetch_requests(), 4);
  // Every hint resolves as a hit or a claim-back; either way the block was
  // read and verified exactly once.
  EXPECT_EQ(spill.prefetch_hits() + spill.prefetch_claimed(), 4);
  EXPECT_EQ(spill.prefetch_dropped(), 0);
  EXPECT_EQ(spill.blocks_verified(), 4);
  EXPECT_EQ(spill.bytes_read(), payload_bytes);
}

TEST(SpillPrefetchTest, CapacityBoundsOutstandingHints) {
  df::SpillManager spill(FreshSpillDir("capacity"));
  spill.set_prefetch_capacity(2);
  // A slow reader keeps the first hints outstanding while the rest arrive.
  FaultInjectorConfig config;
  config.spill_read_delay_rate = 1.0;
  config.spill_read_delay_ms = 30.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  for (int64_t key = 0; key < 5; ++key) {
    ASSERT_TRUE(spill.Write(key, PatternPayload(32)).ok());
  }
  for (int64_t key = 0; key < 5; ++key) spill.Prefetch(key);
  EXPECT_EQ(spill.prefetch_requests(), 2);
  EXPECT_EQ(spill.prefetch_dropped(), 3);
  // Re-hinting a key that already has a slot is a silent dedup.
  spill.Prefetch(0);
  EXPECT_EQ(spill.prefetch_requests(), 2);
  EXPECT_EQ(spill.prefetch_dropped(), 3);
  for (int64_t key = 0; key < 5; ++key) {
    EXPECT_TRUE(spill.Read(key).ok());
  }
}

TEST(SpillPrefetchTest, MissingAndFailedKeysAreDropped) {
  df::SpillManager spill(FreshSpillDir("badkeys"));
  // No spill entry for the key: nothing to read ahead.
  spill.Prefetch(77);
  EXPECT_EQ(spill.prefetch_requests(), 0);
  EXPECT_EQ(spill.prefetch_dropped(), 1);

  // A key with a latched async-write error must not be prefetched: the
  // latched error is the read result (sticky-error satellite of PR 6).
  FaultInjectorConfig fail_all;
  fail_all.spill_write_failure_rate = 1.0;
  FaultInjector injector(fail_all);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(2));
  ASSERT_TRUE(spill.WriteAsync(5, PatternPayload(40)).ok());
  EXPECT_TRUE(spill.Flush().IsIOError());
  spill.Prefetch(5);
  EXPECT_EQ(spill.prefetch_requests(), 0);
  EXPECT_EQ(spill.prefetch_dropped(), 2);
  EXPECT_TRUE(spill.Read(5).status().IsIOError());
}

TEST(SpillPrefetchTest, MemoryBudgetGateDropsHintsWithoutHeadroom) {
  df::SpillManager spill(FreshSpillDir("budget"));
  df::MemoryBudgets budgets;
  budgets.storage = 100;
  df::MemoryManager memory(budgets);
  spill.set_prefetch_memory(&memory, df::MemoryRegion::kStorage);

  ASSERT_TRUE(spill.Write(1, PatternPayload(200)).ok());
  ASSERT_TRUE(spill.Write(2, PatternPayload(60)).ok());

  // 200 bytes cannot be charged against a 100-byte budget: dropped.
  spill.Prefetch(1);
  EXPECT_EQ(spill.prefetch_requests(), 0);
  EXPECT_EQ(spill.prefetch_dropped(), 1);

  // 60 bytes fit; the charge is held while the slot lives...
  spill.Prefetch(2);
  EXPECT_EQ(spill.prefetch_requests(), 1);
  EXPECT_EQ(memory.Available(df::MemoryRegion::kStorage), 40);
  // ...and released when the read consumes it.
  auto read = spill.Read(2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, PatternPayload(60));
  EXPECT_EQ(memory.Available(df::MemoryRegion::kStorage), 100);
}

// ---------------------------------------------------------------------------
// Fault interaction

TEST(SpillPrefetchTest, CorruptPrefetchedBlockSurfacesDataLossOnce) {
  df::SpillManager spill(FreshSpillDir("corrupt"));
  FaultInjectorConfig config;
  config.spill_bit_flip_rate = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(FastRetries(3));

  ASSERT_TRUE(spill.Write(11, PatternPayload(100)).ok());
  EXPECT_EQ(injector.injected(FaultSite::kSpillBitFlip), 1);
  spill.Prefetch(11);
  LetReaderRun();
  auto read = spill.Read(11);
  ASSERT_FALSE(read.ok());
  // Same contract as the sync path: kDataLoss (non-retryable), counted
  // exactly once no matter which thread performed the read.
  EXPECT_TRUE(read.status().IsDataLoss());
  EXPECT_EQ(spill.checksum_failures(), 1);
  EXPECT_EQ(spill.io_retries(), 0);
  EXPECT_EQ(spill.prefetch_hits() + spill.prefetch_corrupt_dropped() +
                spill.prefetch_claimed(),
            1);
}

TEST(SpillPrefetchTest, OverwriteInvalidatesPrefetchedGeneration) {
  df::SpillManager spill(FreshSpillDir("generations"));
  const std::vector<uint8_t> gen1 = PatternPayload(80, 1);
  const std::vector<uint8_t> gen2 = PatternPayload(80, 2);
  ASSERT_TRUE(spill.Write(3, gen1).ok());
  spill.Prefetch(3);
  LetReaderRun();  // Generation 1 is (very likely) latched and ready.
  ASSERT_TRUE(spill.Write(3, gen2).ok());
  auto read = spill.Read(3);
  ASSERT_TRUE(read.ok());
  // The overwrite dropped any latched gen-1 payload: never stale bytes.
  EXPECT_EQ(*read, gen2);
}

TEST(SpillPrefetchTest, DelayedReadInjectionStallsButNeverCorrupts) {
  df::SpillManager spill(FreshSpillDir("delay"));
  FaultInjectorConfig config;
  config.spill_read_delay_rate = 1.0;
  config.spill_read_delay_ms = 1.0;
  FaultInjector injector(config);
  spill.set_fault_injector(&injector);

  for (int64_t key = 0; key < 3; ++key) {
    ASSERT_TRUE(spill.Write(key, PatternPayload(50)).ok());
  }
  for (int64_t key = 0; key < 3; ++key) {
    auto read = spill.Read(key);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read, PatternPayload(50));
  }
  // One stall per read, data and integrity counters untouched.
  EXPECT_EQ(injector.injected(FaultSite::kSpillReadDelay), 3);
  EXPECT_EQ(spill.blocks_verified(), 3);
  EXPECT_EQ(spill.checksum_failures(), 0);
}

// ---------------------------------------------------------------------------
// Engine: exact accounting with prefetch on vs off

df::Table MakeNumbersTable(df::Engine* engine, int n, int partitions) {
  std::vector<df::Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), static_cast<float>(2 * i)};
    records.push_back(std::move(r));
  }
  return engine->MakeTable(std::move(records), partitions).value();
}

struct ChaosOutcome {
  std::vector<float> values;
  df::EngineStats stats;
};

/// One corruption-chaos pass: every partition of a derived table is forced
/// to spill through a bit-flipping writer, then read back (all reads hit
/// rotted blocks -> kDataLoss -> lineage recompute). `prefetch_depth`
/// controls read-ahead; the outcome must not depend on it.
ChaosOutcome RunChaos(int prefetch_depth) {
  ChaosOutcome out;
  df::EngineConfig config;
  config.cpus_per_worker = 2;
  config.budgets.storage = 64;  // Below any partition: everything spills.
  config.prefetch_depth = prefetch_depth;
  config.faults.seed = ChaosSeed();
  config.faults.spill_bit_flip_rate = 1.0;
  df::Engine engine(config);

  df::Table in = MakeNumbersTable(&engine, 96, 4);
  auto derived = engine.MapPartitions(
      in, [](std::vector<df::Record> records)
              -> Result<std::vector<df::Record>> {
        for (df::Record& r : records) r.struct_features[0] *= 2.0f;
        return records;
      });
  EXPECT_TRUE(derived.ok());
  EXPECT_TRUE(
      engine.Persist(&*derived, df::PersistenceFormat::kSerialized).ok());

  auto rows = engine.Collect(*derived);
  EXPECT_TRUE(rows.ok()) << rows.status();
  out.values.assign(96, -1.0f);
  for (const df::Record& r : *rows) out.values[r.id] = r.struct_features[0];
  out.stats = engine.stats();
  return out;
}

TEST(EnginePrefetchChaosTest, AccountingIdenticalWithPrefetchOnAndOff) {
  const ChaosOutcome serial = RunChaos(0);
  const ChaosOutcome pipelined = RunChaos(2);

  // Results healed identically through lineage.
  for (int i = 0; i < 96; ++i) {
    EXPECT_FLOAT_EQ(serial.values[i], 2.0f * i);
    EXPECT_FLOAT_EQ(pipelined.values[i], serial.values[i]);
  }
  // Prefetch moved the reads to another thread but changed no accounting:
  // the same corrupt blocks were detected and recomputed, counted once.
  EXPECT_GE(serial.stats.integrity.checksum_failures, 1);
  EXPECT_EQ(pipelined.stats.integrity.checksum_failures,
            serial.stats.integrity.checksum_failures);
  EXPECT_EQ(pipelined.stats.integrity.recomputes_triggered,
            serial.stats.integrity.recomputes_triggered);
  EXPECT_EQ(pipelined.stats.integrity.torn_writes_detected,
            serial.stats.integrity.torn_writes_detected);

  // The serial run issued no hints; the pipelined run's hints are fully
  // accounted for: every accepted hint ends as a hit, a claim-back, a
  // dropped-corrupt consumption, or an invalidation/shutdown drop.
  EXPECT_EQ(serial.stats.prefetch_requests, 0);
  EXPECT_GT(pipelined.stats.prefetch_requests, 0);
  EXPECT_EQ(pipelined.stats.prefetch_hits + pipelined.stats.prefetch_claimed +
                pipelined.stats.prefetch_corrupt_dropped +
                pipelined.stats.prefetch_dropped,
            pipelined.stats.prefetch_requests);
}

struct DelayOutcome {
  std::vector<float> values;
  int64_t delays_injected = 0;
  int64_t checksum_failures = 0;
};

DelayOutcome RunDelayed(int prefetch_depth) {
  DelayOutcome out;
  df::EngineConfig config;
  config.cpus_per_worker = 2;
  // Fits one partition: the table spills, but reads can fault back in.
  config.budgets.storage = 2048;
  config.prefetch_depth = prefetch_depth;
  config.faults.seed = ChaosSeed();
  config.faults.spill_read_delay_rate = 1.0;
  config.faults.spill_read_delay_ms = 1.0;
  df::Engine engine(config);

  df::Table table = MakeNumbersTable(&engine, 96, 4);
  EXPECT_TRUE(
      engine.Persist(&table, df::PersistenceFormat::kSerialized).ok());
  auto rows = engine.Collect(table);
  EXPECT_TRUE(rows.ok()) << rows.status();
  out.values.assign(96, -1.0f);
  for (const df::Record& r : *rows) out.values[r.id] = r.struct_features[0];
  out.delays_injected =
      engine.fault_injector().injected(FaultSite::kSpillReadDelay);
  out.checksum_failures = engine.stats().integrity.checksum_failures;
  return out;
}

TEST(EnginePrefetchTest, DelayedSpillReadsDrawIdenticalFaultsUnderReadAhead) {
  // Functional (not timing) check of the delay site at engine level:
  // moving a read into the prefetch thread must consume exactly the same
  // fault-injection draws as the sync path — same per-(key, attempt) delay
  // schedule, no extra or missing stalls, no data effects.
  const DelayOutcome serial = RunDelayed(0);
  const DelayOutcome pipelined = RunDelayed(2);
  for (int i = 0; i < 96; ++i) {
    EXPECT_FLOAT_EQ(serial.values[i], i);
    EXPECT_FLOAT_EQ(pipelined.values[i], serial.values[i]);
  }
  EXPECT_GE(serial.delays_injected, 4);  // Every spilled partition stalled.
  EXPECT_EQ(pipelined.delays_injected, serial.delays_injected);
  EXPECT_EQ(serial.checksum_failures, 0);
  EXPECT_EQ(pipelined.checksum_failures, 0);
}

// ---------------------------------------------------------------------------
// Executor: pipelined output is bit-identical at any depth

std::vector<std::vector<uint8_t>> MaterializeAtDepth(int depth) {
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 2;
  engine_config.prefetch_depth = depth < 0 ? 0 : depth;
  df::Engine engine(engine_config);

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  EXPECT_TRUE(arch.ok());
  auto model =
      dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
  EXPECT_TRUE(model.ok());

  feat::MultimodalDatasetSpec spec;
  spec.num_records = 48;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  spec.seed = 3;
  auto data = feat::GenerateMultimodal(spec);
  EXPECT_TRUE(data.ok());
  auto t_img = engine.MakeTable(std::move(data->t_img), 4);
  EXPECT_TRUE(t_img.ok());
  EXPECT_TRUE(
      engine.Persist(&*t_img, df::PersistenceFormat::kSerialized).ok());

  RealExecutor executor(&engine, &*model);
  RealExecutorConfig config;
  config.num_partitions = 4;
  config.train_models = false;
  config.prefetch_depth = depth;
  auto top = arch->TopLayers(1);
  EXPECT_TRUE(top.ok());
  int64_t flops = 0;
  auto features = executor.MaterializeLayer(*t_img, -1, -1, top->front(),
                                            config, &flops);
  EXPECT_TRUE(features.ok()) << features.status();
  EXPECT_GT(flops, 0);

  std::vector<std::vector<uint8_t>> blobs;
  for (const auto& p : features->partitions) {
    auto blob = p->ToBlob();
    EXPECT_TRUE(blob.ok());
    blobs.push_back(std::move(blob).value());
  }
  return blobs;
}

TEST(ExecutorPipelineTest, OutputsBitIdenticalAtEveryPrefetchDepth) {
  const auto baseline = MaterializeAtDepth(0);
  ASSERT_FALSE(baseline.empty());
  for (int depth : {1, 2, 4, -1}) {
    EXPECT_EQ(MaterializeAtDepth(depth), baseline)
        << "depth " << depth << " diverged";
  }
}

// ---------------------------------------------------------------------------
// Depth policy + validation

TEST(ChoosePrefetchDepthTest, ScalesWithArithmeticIntensity) {
  // I/O-bound (< 64 FLOPs/byte): classic double buffering.
  EXPECT_EQ(ChoosePrefetchDepth(1000, 1000, -1, 8), 1);
  // Moderate intensity: two blocks ahead.
  EXPECT_EQ(ChoosePrefetchDepth(64 * 1000, 1000, -1, 8), 2);
  // GEMM-bound (>= 512 FLOPs/byte): the reader runs far ahead.
  EXPECT_EQ(ChoosePrefetchDepth(512 * 1000, 1000, -1, 8), 4);
}

TEST(ChoosePrefetchDepthTest, ClampsToHeadroomQueueAndSanity) {
  // Storage headroom caps the buffered bytes (2 blocks fit)...
  EXPECT_EQ(ChoosePrefetchDepth(512 * 1000, 1000, 2500, 8), 2);
  // ...but never below 1: one block ahead matches the sync path's own
  // transient footprint.
  EXPECT_EQ(ChoosePrefetchDepth(512 * 1000, 1000, 0, 8), 1);
  // The engine's queue capacity is a hard cap.
  EXPECT_EQ(ChoosePrefetchDepth(512 * 1000, 1000, -1, 3), 3);
  // Degenerate inputs stay sane.
  EXPECT_EQ(ChoosePrefetchDepth(0, 0, -1, 8), 1);
  EXPECT_EQ(ChoosePrefetchDepth(1000, 1000, -1, 0), 0);
}

TEST(RealExecutorConfigTest, ValidatesPrefetchDepth) {
  RealExecutorConfig config;
  config.train_models = false;
  for (int ok_depth : {-1, 0, 1, 4, 64}) {
    config.prefetch_depth = ok_depth;
    EXPECT_TRUE(config.Validate().ok()) << ok_depth;
  }
  for (int bad_depth : {-2, 65}) {
    config.prefetch_depth = bad_depth;
    EXPECT_TRUE(config.Validate().IsInvalidArgument()) << bad_depth;
  }
}

}  // namespace
}  // namespace vista
