#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "features/hog.h"
#include "features/synthetic.h"

namespace vista::feat {
namespace {

Tensor StripeImage(int size, bool vertical) {
  Tensor img(Shape{3, size, size});
  float* data = img.mutable_data();
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const int coord = vertical ? x : y;
        data[(c * size + y) * size + x] = (coord / 2) % 2 == 0 ? 1.0f : 0.0f;
      }
    }
  }
  return img;
}

TEST(HogTest, FeatureLengthFormula) {
  HogConfig config;  // 8px cells, 2x2 blocks, 9 bins.
  // 32x32 -> 4x4 cells -> 3x3 blocks -> 3*3*2*2*9 = 324.
  EXPECT_EQ(HogFeatureLength(32, 32, config), 324);
  EXPECT_EQ(HogFeatureLength(8, 8, config), 0);  // Too small for a block.
}

TEST(HogTest, OutputMatchesLength) {
  Rng rng(1);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  auto features = HogFeatures(img);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->num_elements(), HogFeatureLength(32, 32));
}

TEST(HogTest, RejectsNonImage) {
  EXPECT_FALSE(HogFeatures(Tensor(Shape{10})).ok());
  EXPECT_FALSE(HogFeatures(Tensor(Shape{3, 4, 4})).ok());
}

TEST(HogTest, OrientationSelective) {
  // Vertical and horizontal stripes must produce clearly different
  // descriptors — the point of oriented gradients.
  auto v = HogFeatures(StripeImage(32, true));
  auto h = HogFeatures(StripeImage(32, false));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(h.ok());
  double distance = 0;
  for (int64_t i = 0; i < v->num_elements(); ++i) {
    const double d = v->at(i) - h->at(i);
    distance += d * d;
  }
  EXPECT_GT(std::sqrt(distance), 1.0);
}

TEST(HogTest, InvariantToUniformBrightness) {
  // Constant offsets do not change gradients.
  Tensor img = StripeImage(32, true);
  Tensor brighter = img.Clone();
  for (int64_t i = 0; i < brighter.num_elements(); ++i) {
    brighter.set(i, brighter.at(i) + 5.0f);
  }
  auto f1 = HogFeatures(img);
  auto f2 = HogFeatures(brighter);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(f1->AllClose(*f2, 1e-4f));
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  MultimodalDatasetSpec spec;
  spec.num_records = 50;
  spec.num_struct_features = 10;
  spec.image_size = 16;
  auto data = GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->t_str.size(), 50u);
  EXPECT_EQ(data->t_img.size(), 50u);
  // Struct table: label + 10 features, no image.
  EXPECT_EQ(data->t_str[0].struct_features.size(), 11u);
  EXPECT_FALSE(data->t_str[0].has_image());
  // Image table: image only.
  EXPECT_TRUE(data->t_img[0].has_image());
  EXPECT_EQ(data->t_img[0].image().shape(), (Shape{3, 16, 16}));
  // Ids align.
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(data->t_str[i].id, data->t_img[i].id);
  }
}

TEST(SyntheticTest, Deterministic) {
  MultimodalDatasetSpec spec;
  spec.num_records = 20;
  spec.image_size = 16;
  auto a = GenerateMultimodal(spec);
  auto b = GenerateMultimodal(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a->t_str[i].struct_features, b->t_str[i].struct_features);
    EXPECT_TRUE(a->t_img[i].image().AllClose(b->t_img[i].image()));
  }
}

TEST(SyntheticTest, LabelsRoughlyBalanced) {
  MultimodalDatasetSpec spec;
  spec.num_records = 2000;
  spec.image_size = 8;
  auto data = GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  int positives = 0;
  for (const auto& r : data->t_str) {
    if (LabelOf(r) > 0.5f) ++positives;
  }
  EXPECT_NEAR(positives / 2000.0, 0.5, 0.05);
}

TEST(SyntheticTest, StructuredSignalIsInformative) {
  // Class-conditional means of the first informative feature must differ.
  MultimodalDatasetSpec spec;
  spec.num_records = 4000;
  spec.image_size = 8;
  spec.struct_signal = 1.0;
  auto data = GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  double sum1 = 0, sum0 = 0;
  int n1 = 0, n0 = 0;
  for (const auto& r : data->t_str) {
    if (LabelOf(r) > 0.5f) {
      sum1 += r.struct_features[1];
      ++n1;
    } else {
      sum0 += r.struct_features[1];
      ++n0;
    }
  }
  EXPECT_GT(std::fabs(sum1 / n1 - sum0 / n0), 0.5);
}

TEST(SyntheticTest, ImagesCarryClassSignalInColor) {
  MultimodalDatasetSpec spec;
  spec.num_records = 600;
  spec.image_size = 16;
  auto data = GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  // Mean red-channel value should separate the classes (weak tint).
  double red1 = 0, red0 = 0;
  int n1 = 0, n0 = 0;
  for (size_t i = 0; i < data->t_img.size(); ++i) {
    const Tensor& img = data->t_img[i].image();
    double mean = 0;
    const int64_t hw = 16 * 16;
    for (int64_t p = 0; p < hw; ++p) mean += img.data()[p];
    mean /= hw;
    if (LabelOf(data->t_str[i]) > 0.5f) {
      red1 += mean;
      ++n1;
    } else {
      red0 += mean;
      ++n0;
    }
  }
  EXPECT_GT(red1 / n1, red0 / n0);
}

TEST(SyntheticTest, PaperSpecsMatchPublishedSizes) {
  EXPECT_EQ(FoodsSpec().num_records, 20000);
  EXPECT_EQ(FoodsSpec().num_struct_features, 130);
  EXPECT_EQ(FoodsSpec().image_size, 227);
  EXPECT_EQ(AmazonSpec().num_records, 200000);
  EXPECT_EQ(AmazonSpec().num_struct_features, 200);
}

TEST(SyntheticTest, RejectsBadSpecs) {
  MultimodalDatasetSpec spec;
  spec.num_records = 0;
  EXPECT_FALSE(GenerateMultimodal(spec).ok());
  spec = MultimodalDatasetSpec{};
  spec.num_informative_struct = spec.num_struct_features + 1;
  EXPECT_FALSE(GenerateMultimodal(spec).ok());
}


TEST(SyntheticTest, MultipleImagesPerRecord) {
  MultimodalDatasetSpec spec;
  spec.num_records = 30;
  spec.image_size = 16;
  spec.images_per_record = 3;
  auto data = GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  for (const auto& r : data->t_img) {
    ASSERT_EQ(r.images.size(), 3u);
    // Same class, different noise: images differ from each other.
    EXPECT_FALSE(r.images[0].AllClose(r.images[1]));
  }
  spec.images_per_record = 0;
  EXPECT_FALSE(GenerateMultimodal(spec).ok());
}

TEST(SplitTest, TestFractionApproximatelyRespected) {
  int test_count = 0;
  const int n = 10000;
  for (int64_t id = 0; id < n; ++id) {
    if (IsTestId(id, 0.2)) ++test_count;
  }
  EXPECT_NEAR(test_count / static_cast<double>(n), 0.2, 0.02);
}

TEST(SplitTest, DeterministicPerId) {
  for (int64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(IsTestId(id, 0.3), IsTestId(id, 0.3));
  }
}

}  // namespace
}  // namespace vista::feat
