// Tests for the parallel streaming data-movement plane: the two-phase
// shuffle's determinism across parallelism levels (and under injected
// faults), the FlatMap join build table, the widened shuffle task keys,
// and the async double-buffered spill writer.

#include <algorithm>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/flat_map.h"
#include "common/random.h"
#include "dataflow/engine.h"
#include "dataflow/spill.h"

namespace vista::df {
namespace {

// ---------------------------------------------------------------- FlatMap.

TEST(FlatMapTest, InsertFindAndGrowth) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(map.emplace(i * 7 - 5000, i));
  }
  EXPECT_EQ(map.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    const int* v = map.find(i * 7 - 5000);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.find(3), nullptr);  // Not a multiple of 7 offset.
}

TEST(FlatMapTest, KeepsFirstValueOnDuplicateKey) {
  // Matches unordered_map::emplace, which the join build side relied on.
  FlatMap<int> map(4);
  EXPECT_TRUE(map.emplace(42, 1));
  EXPECT_FALSE(map.emplace(42, 2));
  EXPECT_EQ(*map.find(42), 1);
}

TEST(FlatMapTest, MatchesUnorderedMapOnRandomKeys) {
  Rng rng(31);
  FlatMap<int64_t> flat;
  std::unordered_map<int64_t, int64_t> reference;
  for (int i = 0; i < 5000; ++i) {
    // Small key range forces duplicates; negative keys included.
    const int64_t key = static_cast<int64_t>(rng.NextUint64(2000)) - 1000;
    flat.emplace(key, i);
    reference.emplace(key, i);
  }
  EXPECT_EQ(flat.size(), reference.size());
  for (int64_t key = -1200; key <= 1200; ++key) {
    const int64_t* v = flat.find(key);
    auto it = reference.find(key);
    if (it == reference.end()) {
      EXPECT_EQ(v, nullptr) << key;
    } else {
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(*v, it->second) << key;
    }
  }
}

// ------------------------------------------------------- Shuffle task keys.

TEST(ShuffleTaskUnitTest, SidesNeverCollide) {
  // The old packing (right side = op<<16 | 0x8000+i) collided with left
  // once a table passed 0x8000 partitions: left i=0x8000+k equaled right
  // i=k. The widened packing keeps a dedicated side bit above 32 index
  // bits, so no index can reach it.
  const uint64_t op = 7;
  for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{0x7FFF}, int64_t{0x8000},
                    int64_t{0xFFFF}, int64_t{1} << 20, int64_t{1} << 31}) {
    EXPECT_NE(ShuffleTaskUnit(op, 0, 0x8000 + k), ShuffleTaskUnit(op, 1, k));
  }
  std::set<uint64_t> seen;
  for (uint64_t o : {uint64_t{1}, uint64_t{2}, uint64_t{900}}) {
    for (int side : {0, 1}) {
      for (int64_t i : {int64_t{0}, int64_t{5}, int64_t{0x8000},
                        int64_t{0x8005}, int64_t{1} << 30}) {
        EXPECT_TRUE(seen.insert(ShuffleTaskUnit(o, side, i)).second)
            << o << "/" << side << "/" << i;
      }
    }
  }
}

// -------------------------------------------------- Shuffle determinism.

std::vector<Record> MakeJoinRecords(int n, uint64_t seed, bool with_features) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), with_features ? 2.0f : 1.0f};
    if (with_features) {
      Tensor t(Shape{64});
      for (int64_t j = 0; j < 64; ++j) {
        if (rng.NextBool(0.25)) {
          t.set(j, static_cast<float>(rng.NextGaussian()));
        }
      }
      r.features.Append(std::move(t));
    }
    records.push_back(std::move(r));
  }
  return records;
}

/// Serializes every output partition; byte-equality of these blobs is the
/// "bit-identical output" the two-phase shuffle must preserve.
std::vector<std::vector<uint8_t>> TableBlobs(const Table& table) {
  std::vector<std::vector<uint8_t>> blobs;
  for (const auto& p : table.partitions) {
    auto blob = p->ToBlob();
    EXPECT_TRUE(blob.ok());
    blobs.push_back(blob.ok() ? std::move(blob).value()
                              : std::vector<uint8_t>{});
  }
  return blobs;
}

struct MovementRun {
  std::vector<std::vector<uint8_t>> join_shuffle;
  std::vector<std::vector<uint8_t>> join_broadcast;
  std::vector<std::vector<uint8_t>> repartition;
  std::vector<std::vector<uint8_t>> union_;
};

MovementRun RunMovementOps(int threads, FaultInjectorConfig faults = {},
                           int max_attempts = 1) {
  EngineConfig config;
  config.num_workers = 1;
  config.cpus_per_worker = threads;
  config.faults = faults;
  config.retry.max_attempts = std::max(max_attempts, 1);
  config.retry.base_backoff_ms = 0.0;
  Engine engine(config);
  auto left = engine.MakeTable(MakeJoinRecords(400, 3, false), 5);
  auto right = engine.MakeTable(MakeJoinRecords(400, 4, true), 3);
  EXPECT_TRUE(left.ok() && right.ok());

  MovementRun run;
  auto shuffle =
      engine.Join(*left, *right, JoinStrategy::kShuffleHash, 7);
  EXPECT_TRUE(shuffle.ok()) << shuffle.status();
  if (shuffle.ok()) run.join_shuffle = TableBlobs(*shuffle);

  auto broadcast = engine.Join(*left, *right, JoinStrategy::kBroadcast, 5);
  EXPECT_TRUE(broadcast.ok()) << broadcast.status();
  if (broadcast.ok()) run.join_broadcast = TableBlobs(*broadcast);

  auto repart = engine.Repartition(*left, 11);
  EXPECT_TRUE(repart.ok()) << repart.status();
  if (repart.ok()) run.repartition = TableBlobs(*repart);

  auto more = engine.MakeTable(MakeJoinRecords(100, 5, false), 5);
  EXPECT_TRUE(more.ok());
  auto unioned = engine.Union(*left, *more);
  EXPECT_TRUE(unioned.ok()) << unioned.status();
  if (unioned.ok()) run.union_ = TableBlobs(*unioned);
  return run;
}

TEST(ShuffleDeterminismTest, OutputsBitIdenticalAcrossParallelism) {
  const MovementRun serial = RunMovementOps(1);
  for (int threads : {2, 4, 8}) {
    const MovementRun parallel = RunMovementOps(threads);
    EXPECT_EQ(serial.join_shuffle, parallel.join_shuffle) << threads;
    EXPECT_EQ(serial.join_broadcast, parallel.join_broadcast) << threads;
    EXPECT_EQ(serial.repartition, parallel.repartition) << threads;
    EXPECT_EQ(serial.union_, parallel.union_) << threads;
  }
}

TEST(ShuffleDeterminismTest, OutputsBitIdenticalUnderInjectedFaults) {
  const MovementRun clean = RunMovementOps(4);
  FaultInjectorConfig faults;
  faults.seed = 21;
  faults.shuffle_failure_rate = 0.3;
  const MovementRun faulted = RunMovementOps(4, faults, /*max_attempts=*/10);
  EXPECT_EQ(clean.join_shuffle, faulted.join_shuffle);
  EXPECT_EQ(clean.join_broadcast, faulted.join_broadcast);
  EXPECT_EQ(clean.repartition, faulted.repartition);
  EXPECT_EQ(clean.union_, faulted.union_);
  // And the faulted run keeps its schedule deterministic at any thread
  // count, too.
  const MovementRun faulted1 = RunMovementOps(1, faults, /*max_attempts=*/10);
  EXPECT_EQ(faulted1.join_shuffle, faulted.join_shuffle);
}

// ------------------------------------- Zero-decode serialized fast path.

struct SerializedRun {
  std::vector<std::vector<uint8_t>> join;
  std::vector<std::vector<uint8_t>> repartition;
  bool outputs_serialized = true;
};

/// Same tables and ops as RunMovementOps, but the inputs are persisted in
/// serialized form first, which routes Join/Repartition through the
/// zero-decode splice path (and leaves its outputs serialized-resident).
SerializedRun RunSerializedOps(int threads, FaultInjectorConfig faults = {},
                               int max_attempts = 1) {
  EngineConfig config;
  config.num_workers = 1;
  config.cpus_per_worker = threads;
  config.faults = faults;
  config.retry.max_attempts = std::max(max_attempts, 1);
  config.retry.base_backoff_ms = 0.0;
  Engine engine(config);
  auto left = engine.MakeTable(MakeJoinRecords(400, 3, false), 5);
  auto right = engine.MakeTable(MakeJoinRecords(400, 4, true), 3);
  EXPECT_TRUE(left.ok() && right.ok());
  EXPECT_TRUE(engine.Persist(&*left, PersistenceFormat::kSerialized).ok());
  EXPECT_TRUE(engine.Persist(&*right, PersistenceFormat::kSerialized).ok());

  SerializedRun run;
  auto join = engine.Join(*left, *right, JoinStrategy::kShuffleHash, 7);
  EXPECT_TRUE(join.ok()) << join.status();
  if (join.ok()) {
    run.join = TableBlobs(*join);
    for (const auto& p : join->partitions) {
      run.outputs_serialized &=
          p->resident() && p->format() == PersistenceFormat::kSerialized;
    }
  }
  auto repart = engine.Repartition(*left, 11);
  EXPECT_TRUE(repart.ok()) << repart.status();
  if (repart.ok()) {
    run.repartition = TableBlobs(*repart);
    for (const auto& p : repart->partitions) {
      run.outputs_serialized &=
          p->resident() && p->format() == PersistenceFormat::kSerialized;
    }
  }
  return run;
}

TEST(SerializedFastPathTest, MatchesDecodedPathBitForBit) {
  // The splice path never materializes a record, yet its output blobs must
  // equal decode + MergeRecords + re-encode byte for byte.
  const MovementRun decoded = RunMovementOps(4);
  const SerializedRun wire = RunSerializedOps(4);
  EXPECT_TRUE(wire.outputs_serialized);
  EXPECT_EQ(decoded.join_shuffle, wire.join);
  EXPECT_EQ(decoded.repartition, wire.repartition);
}

TEST(SerializedFastPathTest, BitIdenticalAcrossParallelism) {
  const SerializedRun serial = RunSerializedOps(1);
  for (int threads : {2, 4, 8}) {
    const SerializedRun parallel = RunSerializedOps(threads);
    EXPECT_EQ(serial.join, parallel.join) << threads;
    EXPECT_EQ(serial.repartition, parallel.repartition) << threads;
  }
}

TEST(SerializedFastPathTest, BitIdenticalUnderInjectedFaults) {
  const SerializedRun clean = RunSerializedOps(4);
  FaultInjectorConfig faults;
  faults.seed = 23;
  faults.shuffle_failure_rate = 0.3;
  const SerializedRun faulted =
      RunSerializedOps(4, faults, /*max_attempts=*/10);
  EXPECT_EQ(clean.join, faulted.join);
  EXPECT_EQ(clean.repartition, faulted.repartition);
  const SerializedRun faulted1 =
      RunSerializedOps(1, faults, /*max_attempts=*/10);
  EXPECT_EQ(faulted1.join, faulted.join);
}

TEST(SerializedFastPathTest, MixedResidencyFallsBackToDecodedPath) {
  // One serialized side is not enough for the splice path; the join must
  // fall back to the decoding path and still produce the same bytes.
  EngineConfig config;
  config.cpus_per_worker = 4;
  Engine engine(config);
  auto left = engine.MakeTable(MakeJoinRecords(400, 3, false), 5);
  auto right = engine.MakeTable(MakeJoinRecords(400, 4, true), 3);
  ASSERT_TRUE(left.ok() && right.ok());
  ASSERT_TRUE(engine.Persist(&*left, PersistenceFormat::kSerialized).ok());
  auto join = engine.Join(*left, *right, JoinStrategy::kShuffleHash, 7);
  ASSERT_TRUE(join.ok()) << join.status();
  EXPECT_EQ(join->partitions[0]->format(), PersistenceFormat::kDeserialized);
  EXPECT_EQ(RunMovementOps(4).join_shuffle, TableBlobs(*join));
}

// ------------------------------------------------------ Async spill I/O.

TEST(AsyncSpillTest, WriteAsyncIsReadableAfterwards) {
  SpillManager spill("/tmp/vista_movement_spill_a");
  Rng rng(8);
  std::vector<uint8_t> blob(1 << 16);
  for (auto& b : blob) b = static_cast<uint8_t>(rng.NextUint64(256));
  ASSERT_TRUE(spill.WriteAsync(3, blob).ok());
  // Read waits for the pending write of the key (read-after-write order).
  auto back = spill.Read(3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, blob);
  EXPECT_TRUE(spill.Flush().ok());
}

TEST(AsyncSpillTest, CounterAccessorsDrainPendingWrites) {
  SpillManager spill("/tmp/vista_movement_spill_b");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(spill.WriteAsync(i, std::vector<uint8_t>(4096, 7)).ok());
  }
  // No explicit Flush: the accessors themselves must settle first.
  EXPECT_EQ(spill.num_spills(), 5);
  EXPECT_EQ(spill.bytes_written(), 5 * 4096);
}

TEST(AsyncSpillTest, FlushPropagatesAndClearsAsyncErrors) {
  SpillManager spill("/tmp/vista_movement_spill_c");
  FaultInjectorConfig config;
  config.spill_write_failure_rate = 1.0;
  FaultInjector injector(config);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_ms = 0.0;
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(policy);

  ASSERT_TRUE(spill.WriteAsync(9, {1, 2, 3}).ok());  // Queues fine...
  EXPECT_TRUE(spill.Flush().IsIOError());            // ...fails at flush.
  EXPECT_TRUE(spill.Flush().ok());                   // Error is cleared.
  // The per-key latch outlives Flush: reads of the failed key surface the
  // write's IOError (retryable, so lineage recomputation still recovers) —
  // never a silent NotFound that could mask the failed write.
  EXPECT_TRUE(spill.Read(9).status().IsIOError());
  EXPECT_EQ(spill.num_spills(), 0);
  // Remove drops the latch; only then does the key read as absent.
  spill.Remove(9);
  EXPECT_TRUE(spill.Read(9).status().IsNotFound());
}

TEST(AsyncSpillTest, SyncWriteAfterAsyncWriteOfSameKeyWins) {
  SpillManager spill("/tmp/vista_movement_spill_d");
  ASSERT_TRUE(spill.WriteAsync(1, std::vector<uint8_t>(512, 1)).ok());
  ASSERT_TRUE(spill.Write(1, std::vector<uint8_t>(256, 2)).ok());
  auto back = spill.Read(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 256u);
  EXPECT_EQ((*back)[0], 2);
}

// --------------------------------------------- Engine-level async spills.

TEST(EngineAsyncSpillTest, SerializedPersistOverlapsSpillWrites) {
  EngineConfig config;
  config.cpus_per_worker = 4;
  config.budgets.storage = 40 * 1024;  // Tight: most partitions spill.
  Engine engine(config);
  auto table = engine.MakeTable(MakeJoinRecords(600, 6, true), 12);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      engine.Persist(&*table, PersistenceFormat::kSerialized).ok());
  const EngineStats stats = engine.stats();
  ASSERT_GT(stats.num_spills, 0);
  // Queue depth > 0 proves blobs were queued behind the writer thread,
  // i.e. serialization and disk I/O actually overlapped.
  EXPECT_GT(stats.spill_queue_depth_peak, 0);
  // Spilled data stays readable through the cache (writer drained).
  auto rows = engine.Collect(*table);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(static_cast<int>(rows->size()), 600);
}

TEST(EngineAsyncSpillTest, PersistSurfacesAsyncWriteFailures) {
  EngineConfig config;
  config.cpus_per_worker = 2;
  config.budgets.storage = 10 * 1024;  // Force spills...
  config.faults.spill_write_failure_rate = 1.0;  // ...that always fail.
  config.retry.max_attempts = 2;
  config.retry.base_backoff_ms = 0.0;
  Engine engine(config);
  auto table = engine.MakeTable(MakeJoinRecords(400, 2, true), 8);
  ASSERT_TRUE(table.ok());
  // The ordered flush at the end of Persist reports the writer's failure.
  Status st = engine.Persist(&*table, PersistenceFormat::kSerialized);
  EXPECT_TRUE(st.IsIOError()) << st;
}

// ----------------------------------------------- Serialized size model.

TEST(MovementSizingTest, PartitionBlobMatchesSerializedRecordBytes) {
  std::vector<Record> records = MakeJoinRecords(50, 12, true);
  int64_t expected = 0;
  for (const Record& r : records) expected += SerializedRecordBytes(r);
  Partition p(std::move(records));
  auto blob = p.ToBlob();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(static_cast<int64_t>(blob->size()), expected);
  EXPECT_EQ(p.memory_bytes_as(PersistenceFormat::kSerialized), expected);
}

}  // namespace
}  // namespace vista::df
