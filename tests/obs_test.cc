// Tests for the observability layer: metrics registry, trace spans, JSON
// exporters, and the end-to-end wiring through the engine and RealExecutor.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vista/real_executor.h"
#include "vista/sim_executor.h"

namespace vista {
namespace {

TEST(MetricsTest, CounterBasics) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("events");
  EXPECT_EQ(c->value(), 0);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Get-or-create: same name yields the same instrument.
  EXPECT_EQ(registry.counter("events"), c);
  EXPECT_NE(registry.counter("other"), c);
}

TEST(MetricsTest, GaugeTracksHighWater) {
  obs::Registry registry;
  obs::Gauge* g = registry.gauge("resident");
  g->Add(100);
  g->Add(50);
  g->Add(-120);
  EXPECT_EQ(g->value(), 30);
  EXPECT_EQ(g->max_value(), 150);
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  EXPECT_EQ(g->max_value(), 150);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("lat", {1.0, 10.0, 100.0});
  for (double v : {0.5, 0.7, 5.0, 50.0, 500.0}) h->Record(v);
  EXPECT_EQ(h->count(), 5);
  EXPECT_DOUBLE_EQ(h->sum(), 556.2);
  EXPECT_DOUBLE_EQ(h->min_value(), 0.5);
  EXPECT_DOUBLE_EQ(h->max_value(), 500.0);
  const std::vector<int64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow.
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  // Quantiles are bucket approximations; just pin the bracketing bucket.
  EXPECT_LE(h->Quantile(0.5), 10.0);
  EXPECT_GT(h->Quantile(0.99), 10.0);
}

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  // Hammer one counter, gauge, and histogram from the thread pool; totals
  // must come out exact (the TSan preset additionally proves data-race
  // freedom of the relaxed-atomic hot paths).
  obs::Registry registry;
  obs::Counter* c = registry.counter("c");
  obs::Gauge* g = registry.gauge("g");
  obs::Histogram* h = registry.histogram("h");
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t i) {
    for (int j = 0; j < kPerTask; ++j) {
      c->Add(1);
      g->Add(j % 2 == 0 ? 1 : -1);
      h->Record(static_cast<double>((i + j) % 97));
    }
  });
  EXPECT_EQ(c->value(), kTasks * kPerTask);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), kTasks * kPerTask);
  int64_t bucket_total = 0;
  for (int64_t n : h->bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST(MetricsTest, ConcurrentRegistrationYieldsOneInstrument) {
  obs::Registry registry;
  constexpr int kTasks = 32;
  std::vector<obs::Counter*> seen(kTasks, nullptr);
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t i) {
    obs::Counter* c = registry.counter("shared");
    c->Add(1);
    seen[i] = c;
  });
  for (int i = 1; i < kTasks; ++i) EXPECT_EQ(seen[i], seen[0]);
  EXPECT_EQ(seen[0]->value(), kTasks);
}

TEST(TraceTest, SpanNestingAndOrdering) {
  obs::TraceCollector collector;
  {
    obs::ScopedSpan outer(&collector, "outer", "stage");
    EXPECT_GT(outer.id(), 0);
    {
      obs::ScopedSpan inner(&collector, "inner", "engine");
      obs::ScopedSpan innermost(&collector, "innermost", "engine");
      (void)innermost;
    }
  }
  const std::vector<obs::Span> spans = collector.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Ordered by start time: outer, inner, innermost.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "innermost");
  EXPECT_EQ(spans[0].parent_id, 0);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].parent_id, spans[1].id);
  for (const obs::Span& s : spans) {
    EXPECT_GE(s.end_ns, s.start_ns);
    EXPECT_GE(s.seconds(), 0.0);
  }
}

TEST(TraceTest, SiblingCollectorsDoNotShareParents) {
  obs::TraceCollector a;
  obs::TraceCollector b;
  {
    obs::ScopedSpan outer(&a, "outer");
    obs::ScopedSpan other(&b, "other");
    (void)outer;
    (void)other;
  }
  ASSERT_EQ(b.spans().size(), 1u);
  EXPECT_EQ(b.spans()[0].parent_id, 0);  // Not parented to a's span.
}

TEST(TraceTest, SpansSinceSlicesARun) {
  obs::TraceCollector collector;
  { obs::ScopedSpan s(&collector, "before"); }
  const size_t mark = collector.size();
  { obs::ScopedSpan s(&collector, "after"); }
  const std::vector<obs::Span> slice = collector.SpansSince(mark);
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0].name, "after");
}

TEST(TraceTest, ConcurrentSpansFromPool) {
  obs::TraceCollector collector;
  ThreadPool pool(8);
  pool.ParallelFor(200, [&](int64_t i) {
    obs::ScopedSpan span(&collector, "task" + std::to_string(i), "pool");
    (void)span;
  });
  EXPECT_EQ(collector.size(), 200u);
}

TEST(ExportTest, MetricsJsonRoundTrip) {
  obs::Registry registry;
  registry.counter("engine.shuffle_bytes")->Add(12345);
  registry.gauge("cache.resident_bytes")->Set(99);
  registry.histogram("engine.map_task_ms")->Record(3.5);
  const std::string json = obs::MetricsJson(registry).Dump(2);
  EXPECT_NE(json.find("\"engine.shuffle_bytes\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"cache.resident_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.map_task_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(ExportTest, ChromeTraceShape) {
  obs::TraceCollector collector;
  { obs::ScopedSpan s(&collector, "stage_a", "stage"); }
  const std::string json = obs::ChromeTraceJson(collector.spans()).Dump();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage_a\""), std::string::npos);
}

TEST(ExportTest, AggregateSpanSecondsFiltersByCategory) {
  std::vector<obs::Span> spans;
  obs::Span a;
  a.name = "join";
  a.category = "stage";
  a.end_ns = 1000000000;
  spans.push_back(a);
  obs::Span b = a;
  b.name = "map_partitions";
  b.category = "engine";
  spans.push_back(b);
  const auto agg = obs::AggregateSpanSeconds(spans, "stage");
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_DOUBLE_EQ(agg.at("join"), 1.0);
}

TEST(ExportTest, SimResultSpansLayOutStages) {
  sim::SimResult result;
  sim::StageResult s1;
  s1.name = "read:images";
  s1.seconds = 2.0;
  s1.compute_seconds = 0.5;
  s1.disk_seconds = 1.5;
  sim::StageResult s2;
  s2.name = "inference:fc7";
  s2.seconds = 3.0;
  s2.compute_seconds = 3.0;
  result.stages = {s1, s2};
  const std::vector<obs::Span> spans = SimResultSpans(result);
  const auto agg = obs::AggregateSpanSeconds(spans, "stage");
  EXPECT_DOUBLE_EQ(agg.at("read:images"), 2.0);
  EXPECT_DOUBLE_EQ(agg.at("inference:fc7"), 3.0);
  // Stage 2 starts where stage 1 ends, and component children are parented.
  for (const obs::Span& s : spans) {
    if (s.category == "component") {
      EXPECT_GT(s.parent_id, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end regression: a real executor run under storage pressure must
// produce nonzero per-stage timings and nonzero engine/spill/cache counters
// through the exported profile.

TEST(ObsEndToEndTest, RealRunProducesStageTimingsAndCounters) {
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  // Storage budget small enough that persisting the feature tables spills.
  engine_config.budgets.storage = 16 * 1024;
  df::Engine engine(engine_config);

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  ASSERT_TRUE(arch.ok());
  auto model = dl::CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  model->EnableProfiling(&engine.metrics());

  feat::MultimodalDatasetSpec spec;
  spec.num_records = 120;
  spec.num_struct_features = 8;
  spec.image_size = 32;
  spec.seed = 3;
  auto data = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(data.ok());
  df::Table t_str = engine.MakeTable(std::move(data->t_str), 4).value();
  df::Table t_img = engine.MakeTable(std::move(data->t_img), 4).value();

  TransferWorkload workload;
  workload.cnn = dl::KnownCnn::kAlexNet;
  workload.layers = arch->TopLayers(2).value();
  workload.model = DownstreamModel::kLogisticRegression;
  workload.training_iterations = 3;

  RealExecutor executor(&engine, &*model);
  auto plan = CompilePlan(LogicalPlan::kStaged, workload);
  ASSERT_TRUE(plan.ok());
  RealExecutorConfig config;
  config.num_partitions = 4;
  config.lr.iterations = 3;
  auto result = executor.Run(*plan, workload, t_str, t_img, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Per-stage spans: every Table-3 stage present with nonzero time (reads
  // are table-handle copies, so only require presence there).
  ASSERT_FALSE(result->spans.empty());
  for (const char* stage : {"join", "inference", "persistence", "train"}) {
    ASSERT_TRUE(result->stage_seconds.count(stage)) << stage;
    EXPECT_GT(result->stage_seconds.at(stage), 0.0) << stage;
  }
  EXPECT_TRUE(result->stage_seconds.count("read"));

  // Engine / spill / cache counters through the registry.
  auto counter = [&](const char* name) {
    return engine.metrics().counter(name)->value();
  };
  EXPECT_GT(counter("engine.map_tasks"), 0);
  EXPECT_GT(counter("engine.partitions_read"), 0);
  EXPECT_GT(counter("engine.join_ops"), 0);
  EXPECT_GT(counter("engine.shuffle_bytes"), 0);
  EXPECT_GT(counter("cache.inserts"), 0);
  EXPECT_GT(counter("spill.writes"), 0);
  EXPECT_GT(counter("spill.bytes_written"), 0);
  EXPECT_EQ(counter("spill.bytes_written"),
            result->engine_stats.spill_bytes_written);

  // Per-layer CNN forward-time histograms from EnableProfiling.
  bool found_layer_histogram = false;
  for (const obs::Histogram* h : engine.metrics().histograms()) {
    if (h->name().rfind("dl.forward_ms.", 0) == 0 && h->count() > 0) {
      found_layer_histogram = true;
    }
  }
  EXPECT_TRUE(found_layer_histogram);

  // The exported profile carries all of it, machine-readable.
  const std::string json =
      obs::ProfileJson(&engine.metrics(), result->spans).Dump(2);
  EXPECT_NE(json.find("\"stage_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"inference\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.map_tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"spill.writes\""), std::string::npos);
}

TEST(ObsEndToEndTest, InjectedRegistryAggregatesAcrossEngines) {
  obs::Registry shared;
  obs::TraceCollector tracer;
  for (int i = 0; i < 2; ++i) {
    df::EngineConfig config;
    config.metrics = &shared;
    config.tracer = &tracer;
    df::Engine engine(config);
    std::vector<df::Record> records(10);
    for (int j = 0; j < 10; ++j) records[j].id = j;
    df::Table t = engine.MakeTable(std::move(records), 2).value();
    auto mapped = engine.MapPartitions(
        t, [](std::vector<df::Record> r) -> Result<std::vector<df::Record>> {
          return r;
        });
    ASSERT_TRUE(mapped.ok());
  }
  // Two engines, two partitions each.
  EXPECT_EQ(shared.counter("engine.map_tasks")->value(), 4);
  EXPECT_EQ(tracer.size(), 2u);  // One map_partitions span per engine.
}

}  // namespace
}  // namespace vista
