#include <gtest/gtest.h>

#include "vista/plans.h"

namespace vista {
namespace {

TransferWorkload FourLayerWorkload() {
  TransferWorkload w;
  w.cnn = dl::KnownCnn::kAlexNet;
  w.layers = {4, 5, 6, 7};  // conv5, fc6, fc7, fc8.
  return w;
}

int CountKind(const CompiledPlan& plan, PlanStep::Kind kind) {
  int n = 0;
  for (const auto& s : plan.steps) {
    if (s.kind == kind) ++n;
  }
  return n;
}

TEST(PlansTest, LazyHasOneInferenceAndJoinPerLayer) {
  auto plan = CompilePlan(LogicalPlan::kLazy, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kInference), 4);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kJoin), 4);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kTrain), 4);
  // Every lazy inference starts from the raw image: full redundancy.
  for (const auto& s : plan->steps) {
    if (s.kind == PlanStep::Kind::kInference) {
      EXPECT_EQ(s.source_slot, -1);
      EXPECT_EQ(s.produce_layers.size(), 1u);
    }
  }
}

TEST(PlansTest, LazyReorderedJoinsOnce) {
  auto plan = CompilePlan(LogicalPlan::kLazyReordered, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kJoin), 1);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kInference), 4);
}

TEST(PlansTest, EagerMaterializesAllLayersAtOnce) {
  auto plan = CompilePlan(LogicalPlan::kEager, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kInference), 1);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kJoin), 1);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kTrain), 4);
  for (const auto& s : plan->steps) {
    if (s.kind == PlanStep::Kind::kInference) {
      EXPECT_EQ(s.produce_layers, (std::vector<int>{4, 5, 6, 7}));
    }
  }
  // Train steps address distinct TensorList slots.
  std::vector<int> slots;
  for (const auto& s : plan->steps) {
    if (s.kind == PlanStep::Kind::kTrain) slots.push_back(s.feature_slot);
  }
  EXPECT_EQ(slots, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PlansTest, StagedChainsPartialInference) {
  auto plan = CompilePlan(LogicalPlan::kStaged, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kInference), 4);
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kJoin), 1);
  // First hop reads the raw image; later hops read the previous layer.
  std::vector<const PlanStep*> inference;
  for (const auto& s : plan->steps) {
    if (s.kind == PlanStep::Kind::kInference) inference.push_back(&s);
  }
  EXPECT_EQ(inference[0]->source_slot, -1);
  EXPECT_EQ(inference[1]->source_slot, 0);
  EXPECT_EQ(inference[1]->source_layer, 4);
  EXPECT_EQ(inference[1]->produce_layers, (std::vector<int>{5}));
  EXPECT_EQ(inference[3]->source_layer, 6);
}

TEST(PlansTest, StagedReleasesPreviousStage) {
  auto plan = CompilePlan(LogicalPlan::kStaged, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  // Every intermediate t_i except the last is released before the end.
  EXPECT_GE(CountKind(*plan, PlanStep::Kind::kRelease), 4);
}

TEST(PlansTest, StagedReorderedJoinsFirst) {
  auto plan =
      CompilePlan(LogicalPlan::kStagedReordered, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  // The join appears before any inference step.
  int join_pos = -1, first_inference_pos = -1;
  for (size_t i = 0; i < plan->steps.size(); ++i) {
    if (plan->steps[i].kind == PlanStep::Kind::kJoin && join_pos < 0) {
      join_pos = static_cast<int>(i);
    }
    if (plan->steps[i].kind == PlanStep::Kind::kInference &&
        first_inference_pos < 0) {
      first_inference_pos = static_cast<int>(i);
    }
  }
  EXPECT_LT(join_pos, first_inference_pos);
}

TEST(PlansTest, PreMaterializedBaseSkipsFirstInference) {
  auto plan =
      CompilePlan(LogicalPlan::kLazy, FourLayerWorkload(), true);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->pre_materialized_base);
  // The first layer's inference step is a pass-through (source == target).
  for (const auto& s : plan->steps) {
    if (s.kind == PlanStep::Kind::kInference) {
      EXPECT_EQ(s.source_slot, 0);
      EXPECT_EQ(s.source_layer, 4);
    }
  }
}

TEST(PlansTest, RejectsEmptyOrUnsortedLayers) {
  TransferWorkload w = FourLayerWorkload();
  w.layers = {};
  EXPECT_FALSE(CompilePlan(LogicalPlan::kStaged, w).ok());
  w.layers = {5, 4};
  EXPECT_FALSE(CompilePlan(LogicalPlan::kStaged, w).ok());
  w.layers = {4, 4};
  EXPECT_FALSE(CompilePlan(LogicalPlan::kStaged, w).ok());
}

TEST(PlansTest, SingleLayerPlansDegenerate) {
  TransferWorkload w = FourLayerWorkload();
  w.layers = {7};
  for (LogicalPlan p : {LogicalPlan::kLazy, LogicalPlan::kEager,
                        LogicalPlan::kStaged}) {
    auto plan = CompilePlan(p, w);
    ASSERT_TRUE(plan.ok()) << LogicalPlanToString(p);
    EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kInference), 1);
    EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kTrain), 1);
  }
}

TEST(PlansTest, ToStringListsSteps) {
  auto plan = CompilePlan(LogicalPlan::kStaged, FourLayerWorkload());
  ASSERT_TRUE(plan.ok());
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Staged/AJ"), std::string::npos);
  EXPECT_NE(s.find("Inference"), std::string::npos);
  EXPECT_NE(s.find("Train"), std::string::npos);
}

// Parameterized: every plan compiles for every |L| from 1 to 5.
class PlanCompileTest
    : public ::testing::TestWithParam<std::tuple<LogicalPlan, int>> {};

TEST_P(PlanCompileTest, CompilesAndBalancesPersistRelease) {
  const auto [logical, k] = GetParam();
  TransferWorkload w;
  w.cnn = dl::KnownCnn::kResNet50;
  for (int i = 0; i < k; ++i) w.layers.push_back(13 + i);
  auto plan = CompilePlan(logical, w);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(*plan, PlanStep::Kind::kTrain), k);
  // Every persisted table is eventually released.
  for (size_t i = 0; i < plan->steps.size(); ++i) {
    if (plan->steps[i].kind != PlanStep::Kind::kPersist) continue;
    bool released = false;
    for (size_t j = i + 1; j < plan->steps.size(); ++j) {
      if (plan->steps[j].kind == PlanStep::Kind::kRelease &&
          plan->steps[j].input == plan->steps[i].input) {
        released = true;
      }
    }
    EXPECT_TRUE(released) << plan->steps[i].input;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, PlanCompileTest,
    ::testing::Combine(
        ::testing::Values(LogicalPlan::kLazy, LogicalPlan::kLazyReordered,
                          LogicalPlan::kEager, LogicalPlan::kEagerReordered,
                          LogicalPlan::kStaged,
                          LogicalPlan::kStagedReordered),
        ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace vista
