#include <gtest/gtest.h>

#include "common/random.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace vista {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{3, 227, 227};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_EQ(s.num_elements(), 3 * 227 * 227);
  EXPECT_EQ(s.num_bytes(), 3 * 227 * 227 * 4);
  EXPECT_EQ(s.ToString(), "(3, 227, 227)");
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.ToString(), "()");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2}), (Shape{2, 1}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.num_elements(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(3), 4.0f);
}

TEST(TensorTest, Full) {
  Tensor t = Tensor::Full(Shape{5}, 2.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, CopySharesBuffer) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b = a;
  b.set(0, 9.0f);
  // Copies alias the same buffer by design (Arrow-style).
  EXPECT_EQ(a.at(0), 9.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b = a.Clone();
  b.set(0, 9.0f);
  EXPECT_EQ(a.at(0), 1.0f);
  EXPECT_EQ(b.at(0), 9.0f);
}

TEST(TensorTest, FlattenPreservesValues) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor f = a.Flatten();
  EXPECT_EQ(f.shape(), (Shape{4}));
  EXPECT_EQ(f.at(2), 3.0f);
}

TEST(TensorTest, At3Indexing) {
  Tensor t(Shape{2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at3(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at3(0, 1, 1), 3.0f);
  EXPECT_EQ(t.at3(1, 0, 1), 5.0f);
  EXPECT_EQ(t.at3(1, 1, 0), 6.0f);
}

TEST(TensorTest, AllClose) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.0f + 1e-7f});
  Tensor c(Shape{2}, {1.0f, 2.1f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Tensor(Shape{3})));
}

TEST(TensorTest, RandomGaussianDeterministic) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::RandomGaussian(Shape{100}, &r1, 0.5f);
  Tensor b = Tensor::RandomGaussian(Shape{100}, &r2, 0.5f);
  EXPECT_TRUE(a.AllClose(b));
}

TEST(TensorListTest, AppendAndSizes) {
  TensorList list;
  EXPECT_TRUE(list.empty());
  list.Append(Tensor(Shape{4}));
  list.Append(Tensor(Shape{2, 3}));
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(list.num_bytes(), 4 * 4 + 6 * 4);
  EXPECT_EQ(list.at(1).shape(), (Shape{2, 3}));
}

}  // namespace
}  // namespace vista
