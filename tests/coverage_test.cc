// Coverage sweep: exercises the remaining less-traveled paths — stage
// construction for pre-materialized plans, simulator pre-materialization,
// concurrent engine usage under storage pressure, workload construction
// errors, and spec round-trips for grouped convolutions.

#include <atomic>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dl/model_parser.h"
#include "vista/experiments.h"

namespace vista {
namespace {

TEST(SimStagesTest, PreMaterializedLazyReadsFilesNotCache) {
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(dl::KnownCnn::kResNet50).value();
  auto workload =
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kResNet50, 5)
          .value();
  auto plan = CompilePlan(LogicalPlan::kLazy, workload,
                          /*pre_materialized_base=*/true)
                  .value();
  SimExecutorConfig config;
  config.env = SystemEnv{};
  config.node = sim::NodeResources{};
  config.profile = SparkDefaultProfile(config.env, 5);
  SimExecutor executor(entry);
  auto stages =
      executor.BuildStages(plan, workload, FoodsDataStats(), config);
  ASSERT_TRUE(stages.ok());
  // Every pass-through/partial inference hop re-reads the base-layer file
  // from disk (Appendix B's IO cost), so inference stages carry disk reads.
  int file_reading_stages = 0;
  for (const auto& stage : *stages) {
    if (stage.name.rfind("inference:", 0) != 0) continue;
    int64_t dread = 0;
    for (const auto& t : stage.tasks) dread += t.disk_read_bytes;
    if (dread > 0) ++file_reading_stages;
  }
  EXPECT_EQ(file_reading_stages, 5);
  // And no separate image-read stage exists.
  for (const auto& stage : *stages) {
    EXPECT_NE(stage.name, "read:images");
  }
}

TEST(SimStagesTest, PreMaterializationReportsFileSize) {
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(dl::KnownCnn::kAlexNet).value();
  auto workload =
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kAlexNet, 4)
          .value();
  SimExecutorConfig config;
  config.env = SystemEnv{};
  config.node = sim::NodeResources{};
  config.profile = SparkDefaultProfile(config.env, 5);
  SimExecutor executor(entry);
  int64_t file_bytes = 0;
  auto result = executor.SimulatePreMaterialization(
      workload, FoodsDataStats(), config, &file_bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->crashed());
  // conv5 of AlexNet, serialized: n * (16 + 0.7 * 36864).
  EXPECT_EQ(file_bytes,
            executor.MaterializedLayerFileBytes(4, FoodsDataStats()));
  EXPECT_GT(file_bytes, MiB(400));
  EXPECT_LT(file_bytes, MiB(600));
}

TEST(WorkloadTest, TopLayersValidatesRange) {
  auto roster = Roster::Default().value();
  EXPECT_FALSE(
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kAlexNet, 0).ok());
  EXPECT_FALSE(
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kAlexNet, 99).ok());
  auto w = TransferWorkload::TopLayers(roster, dl::KnownCnn::kVgg16, 8);
  ASSERT_TRUE(w.ok());  // All 8 logical layers.
  EXPECT_EQ(w->layers.front(), 0);
}

TEST(ModelParserTest, GroupedConvRoundTripsThroughSpec) {
  auto arch = dl::AlexNetArch().value();
  const std::string spec = dl::CnnSpecToString(arch);
  EXPECT_NE(spec.find("groups=2"), std::string::npos);
  auto parsed = dl::ParseCnnSpec(spec);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->total_params(), arch.total_params());
}

TEST(EngineConcurrencyTest, ParallelOperationsUnderStoragePressure) {
  // Joins, maps, and persists racing over a storage-starved engine: no
  // crashes, no lost records, spills happen and everything stays readable.
  df::EngineConfig config;
  config.num_workers = 2;
  config.cpus_per_worker = 4;
  config.budgets.storage = 64 * 1024;
  df::Engine engine(config);

  Rng rng(3);
  std::vector<df::Record> records;
  for (int i = 0; i < 400; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i % 2)};
    r.features.Append(Tensor::RandomGaussian(Shape{128}, &rng));
    records.push_back(std::move(r));
  }
  auto base = engine.MakeTable(records, 16).value();
  ASSERT_TRUE(
      engine.Persist(&base, df::PersistenceFormat::kSerialized).ok());

  std::atomic<int> failures{0};
  ThreadPool drivers(4);
  for (int round = 0; round < 4; ++round) {
    drivers.Submit([&engine, &base, &failures] {
      auto mapped = engine.MapPartitions(
          base, [](std::vector<df::Record> rs)
                    -> Result<std::vector<df::Record>> { return rs; });
      if (!mapped.ok() || mapped->num_records() != 400) {
        failures.fetch_add(1);
        return;
      }
      auto joined = engine.Join(base, *mapped,
                                df::JoinStrategy::kShuffleHash, 8);
      if (!joined.ok() || joined->num_records() != 400) {
        failures.fetch_add(1);
      }
    });
  }
  drivers.WaitIdle();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(engine.stats().num_spills, 0);
  // The cached base table is still intact.
  auto rows = engine.Collect(base);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 400u);
}

TEST(PartitionCoverageTest, SizeQueriesAcrossFormats) {
  std::vector<df::Record> records;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    df::Record r;
    r.id = i;
    Tensor t(Shape{64});
    t.set(i, 1.0f);  // Very sparse.
    r.features.Append(std::move(t));
    records.push_back(std::move(r));
  }
  df::Partition p(std::move(records));
  const int64_t deser =
      p.memory_bytes_as(df::PersistenceFormat::kDeserialized);
  const int64_t ser = p.memory_bytes_as(df::PersistenceFormat::kSerialized);
  EXPECT_GT(deser, ser);
  // Size queries are consistent regardless of resident format.
  ASSERT_TRUE(p.ConvertTo(df::PersistenceFormat::kSerialized).ok());
  EXPECT_EQ(p.memory_bytes_as(df::PersistenceFormat::kDeserialized), deser);
  EXPECT_EQ(p.memory_bytes(), ser);
}

TEST(VistaOptionsTest, LayerNamesResolveAcrossRoster) {
  // Cross-check that the workload layer indices the optimizer plans with
  // resolve to the paper's layer names for every roster CNN.
  auto roster = Roster::Default().value();
  struct Case {
    dl::KnownCnn cnn;
    int layers;
    const char* bottom;
    const char* top;
  };
  const Case cases[] = {
      {dl::KnownCnn::kAlexNet, 4, "conv5", "fc8"},
      {dl::KnownCnn::kVgg16, 3, "fc6", "fc8"},
      {dl::KnownCnn::kResNet50, 5, "conv4_6", "fc6"},
  };
  for (const Case& c : cases) {
    const RosterEntry* entry = roster.Lookup(c.cnn).value();
    auto w = TransferWorkload::TopLayers(roster, c.cnn, c.layers).value();
    EXPECT_EQ(entry->arch.layer(w.layers.front()).name, c.bottom);
    EXPECT_EQ(entry->arch.layer(w.layers.back()).name, c.top);
  }
}

}  // namespace
}  // namespace vista
