#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataflow/engine.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace vista::ml {
namespace {

// Linearly separable binary data: label = 1 iff w.x > 0.
std::vector<df::Record> LinearData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<df::Record> records;
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    const float x0 = static_cast<float>(rng.NextGaussian());
    const float x1 = static_cast<float>(rng.NextGaussian());
    const float label = (2.0f * x0 - x1 > 0) ? 1.0f : 0.0f;
    r.struct_features = {label, x0, x1};
    records.push_back(std::move(r));
  }
  return records;
}

// XOR-style data that no linear model can fit.
std::vector<df::Record> XorData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<df::Record> records;
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    const float x0 = rng.NextBool(0.5) ? 1.0f : -1.0f;
    const float x1 = rng.NextBool(0.5) ? 1.0f : -1.0f;
    const float noise0 = static_cast<float>(rng.NextGaussian()) * 0.1f;
    const float noise1 = static_cast<float>(rng.NextGaussian()) * 0.1f;
    const float label = (x0 * x1 > 0) ? 1.0f : 0.0f;
    r.struct_features = {label, x0 + noise0, x1 + noise1};
    records.push_back(std::move(r));
  }
  return records;
}

Status Extract(const df::Record& r, std::vector<float>* x, float* label) {
  *label = r.struct_features[0];
  x->assign(r.struct_features.begin() + 1, r.struct_features.end());
  return Status::OK();
}

double TrainAccuracy(df::Engine* engine, const df::Table& table,
                     const std::function<int(const float*)>& predict) {
  auto rows = engine->Collect(table);
  BinaryMetrics m;
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : *rows) {
    Extract(r, &x, &label).ok();
    m.Add(predict(x.data()), label > 0.5f ? 1 : 0);
  }
  return m.Accuracy();
}

TEST(MetricsTest, ConfusionCounts) {
  BinaryMetrics m = EvaluateBinary({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(m.true_positives, 2);
  EXPECT_EQ(m.false_positives, 1);
  EXPECT_EQ(m.true_negatives, 1);
  EXPECT_EQ(m.false_negatives, 1);
  EXPECT_NEAR(m.Accuracy(), 0.6, 1e-9);
  EXPECT_NEAR(m.Precision(), 2.0 / 3, 1e-9);
  EXPECT_NEAR(m.Recall(), 2.0 / 3, 1e-9);
  EXPECT_NEAR(m.F1(), 2.0 / 3, 1e-9);
}

TEST(MetricsTest, DegenerateCasesAreZero) {
  BinaryMetrics m;
  EXPECT_EQ(m.Accuracy(), 0.0);
  EXPECT_EQ(m.F1(), 0.0);
  m.Add(0, 0);
  EXPECT_EQ(m.Precision(), 0.0);
  EXPECT_EQ(m.Recall(), 0.0);
  EXPECT_EQ(m.Accuracy(), 1.0);
}


TEST(MetricsTest, RocAucPerfectAndRandom) {
  // Perfect ranking.
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  // Perfectly wrong ranking.
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  // All-tied scores: AUC 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
  // Degenerate single-class input.
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
}

TEST(MetricsTest, RocAucHandComputed) {
  // scores 0.1(neg) 0.4(pos) 0.35(neg) 0.8(pos):
  // pairs: (0.4>0.1)=1, (0.4>0.35)=1, (0.8>0.1)=1, (0.8>0.35)=1 => AUC 1.
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.4, 0.35, 0.8}, {0, 1, 0, 1}), 1.0);
  // Swap one: 0.3(pos) < 0.35(neg): 3 of 4 pairs correct => 0.75.
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.3, 0.35, 0.8}, {0, 1, 0, 1}), 0.75);
}

TEST(MetricsTest, RocAucTracksModelQuality) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(1500, 21), 4);
  ASSERT_TRUE(table.ok());
  LogisticRegressionConfig config;
  config.iterations = 40;
  config.learning_rate = 1.0;
  config.reg_lambda = 0.0;
  auto model = TrainLogisticRegression(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  std::vector<double> scores;
  std::vector<int> labels;
  std::vector<float> x;
  float label = 0;
  const std::vector<df::Record> rows = engine.Collect(*table).value();
  for (const df::Record& r : rows) {
    ASSERT_TRUE(Extract(r, &x, &label).ok());
    scores.push_back(model->PredictProbability(x.data()));
    labels.push_back(label > 0.5f ? 1 : 0);
  }
  EXPECT_GT(RocAuc(scores, labels), 0.97);
}

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(2000, 1), 4);
  ASSERT_TRUE(table.ok());
  LogisticRegressionConfig config;
  config.iterations = 60;
  config.learning_rate = 1.0;
  config.reg_lambda = 0.0;
  auto model = TrainLogisticRegression(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  const double acc = TrainAccuracy(
      &engine, *table, [&](const float* x) { return model->Predict(x); });
  EXPECT_GT(acc, 0.95);
}

TEST(LogisticRegressionTest, ElasticNetShrinksWeights) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(1000, 2), 4);
  ASSERT_TRUE(table.ok());
  LogisticRegressionConfig no_reg;
  no_reg.iterations = 40;
  no_reg.reg_lambda = 0.0;
  LogisticRegressionConfig strong_reg = no_reg;
  strong_reg.reg_lambda = 0.5;
  auto m1 = TrainLogisticRegression(&engine, *table, Extract, no_reg);
  auto m2 = TrainLogisticRegression(&engine, *table, Extract, strong_reg);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  double norm1 = 0, norm2 = 0;
  for (double w : m1->weights()) norm1 += w * w;
  for (double w : m2->weights()) norm2 += w * w;
  EXPECT_LT(norm2, norm1);
}

TEST(LogisticRegressionTest, RejectsEmptyTable) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable({}, 2);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(
      TrainLogisticRegression(&engine, *table, Extract, {}).ok());
}

TEST(LogisticRegressionTest, LogLossDecreasesWithTraining) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(1000, 3), 4);
  ASSERT_TRUE(table.ok());
  LogisticRegressionConfig short_run;
  short_run.iterations = 1;
  LogisticRegressionConfig long_run;
  long_run.iterations = 50;
  auto m1 = TrainLogisticRegression(&engine, *table, Extract, short_run);
  auto m2 = TrainLogisticRegression(&engine, *table, Extract, long_run);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  auto loss1 = LogisticLogLoss(&engine, *table, Extract, *m1);
  auto loss2 = LogisticLogLoss(&engine, *table, Extract, *m2);
  ASSERT_TRUE(loss1.ok());
  ASSERT_TRUE(loss2.ok());
  EXPECT_LT(*loss2, *loss1);
}

TEST(MlpTest, LearnsXor) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(XorData(800, 3), 4);
  ASSERT_TRUE(table.ok());
  MlpConfig config;
  config.hidden_sizes = {16};
  config.iterations = 400;
  config.learning_rate = 0.8;
  auto model = TrainMlp(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  const double acc = TrainAccuracy(
      &engine, *table, [&](const float* x) { return model->Predict(x); });
  EXPECT_GT(acc, 0.9);
}

TEST(MlpTest, LinearModelCannotFitXorButMlpCan) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(XorData(800, 4), 4);
  ASSERT_TRUE(table.ok());
  LogisticRegressionConfig lr;
  lr.iterations = 100;
  auto linear = TrainLogisticRegression(&engine, *table, Extract, lr);
  ASSERT_TRUE(linear.ok());
  // The best any linear boundary can do on XOR is 3 of 4 quadrants (75%).
  const double linear_acc = TrainAccuracy(
      &engine, *table, [&](const float* x) { return linear->Predict(x); });
  EXPECT_LT(linear_acc, 0.8);
}

TEST(MlpTest, MemoryBytesGrowsWithWidth) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(100, 5), 2);
  MlpConfig narrow;
  narrow.hidden_sizes = {4};
  narrow.iterations = 1;
  MlpConfig wide;
  wide.hidden_sizes = {64, 64};
  wide.iterations = 1;
  auto m1 = TrainMlp(&engine, *table, Extract, narrow);
  auto m2 = TrainMlp(&engine, *table, Extract, wide);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_GT(m2->MemoryBytes(), m1->MemoryBytes());
}

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(1000, 6), 4);
  ASSERT_TRUE(table.ok());
  DecisionTreeConfig config;
  config.max_depth = 6;
  auto model = TrainDecisionTree(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->num_nodes(), 1);
  EXPECT_LE(model->depth(), 6);
  const double acc = TrainAccuracy(
      &engine, *table, [&](const float* x) { return model->Predict(x); });
  EXPECT_GT(acc, 0.85);
}

TEST(DecisionTreeTest, LearnsXorUnlikeLinearModel) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(XorData(1000, 7), 4);
  ASSERT_TRUE(table.ok());
  DecisionTreeConfig config;
  config.max_depth = 4;
  auto model = TrainDecisionTree(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  const double acc = TrainAccuracy(
      &engine, *table, [&](const float* x) { return model->Predict(x); });
  EXPECT_GT(acc, 0.9);
}

TEST(DecisionTreeTest, PureLeafStopsSplitting) {
  df::Engine engine(df::EngineConfig{});
  std::vector<df::Record> records;
  for (int i = 0; i < 100; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {1.0f, static_cast<float>(i)};
    records.push_back(std::move(r));
  }
  auto table = engine.MakeTable(records, 2);
  auto model = TrainDecisionTree(&engine, *table, Extract, {});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_nodes(), 1);  // All labels identical: one leaf.
}

TEST(DecisionTreeTest, RespectsMinSamplesLeaf) {
  df::Engine engine(df::EngineConfig{});
  auto table = engine.MakeTable(LinearData(30, 8), 2);
  DecisionTreeConfig config;
  config.min_samples_leaf = 20;  // Cannot split 30 rows into 20+20.
  auto model = TrainDecisionTree(&engine, *table, Extract, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_nodes(), 1);
}

}  // namespace
}  // namespace vista::ml
