// Data-movement-plane bench: the two-phase parallel shuffle + one-allocation
// record codec against a faithful port of the serial implementation they
// replaced (growing-buffer Put*/per-element sparse Read* codec, global
// shuffle buckets, std::unordered_map join build, synchronous spill writes).
//
// Sections in the JSON report ("extras"):
//   shuffle_join    serial_ms / parallel_ms / speedup on the shuffle-join
//                   stage: serialized input partitions in, serialized
//                   output partitions out. The reference decodes every
//                   blob, buckets by hash, hash-joins, merges, and
//                   re-encodes the joined partitions; the engine's
//                   late-materialization path scans, buckets, and splices
//                   the same bytes without materializing a record
//   serialize       old codec vs one-allocation codec on the join output
//   persist_overlap serialized Persist of the join output through a
//                   storage-constrained engine: async spill queue high-water
//                   mark > 0 proves encode and disk I/O overlapped; the
//                   old encode-then-sync-write time is reported alongside
//   determinism     1 if the engine join is bit-identical at 1 vs N threads
//
// The regression gate tracks the machine-independent ratios (speedup,
// throughput_ratio), not the absolute latencies.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataflow/engine.h"
#include "dataflow/spill.h"

namespace vista::bench {
namespace {

using df::Record;
using df::Table;
using vista::Tensor;

// ------------------------------------------------------------------------
// Faithful port of the pre-optimization data plane. The wire format is
// unchanged, so both paths read and produce the same bytes; only the
// mechanics differ (per-element buffer growth, per-element bounds-checked
// sparse reads, one global bucket per destination, unordered_map builds).
namespace reference {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

void PutF32(float v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutFloats(const float* data, int64_t n, std::vector<uint8_t>* out) {
  if (n <= 0) return;
  const size_t at = out->size();
  out->resize(at + static_cast<size_t>(n) * 4);
  std::memcpy(out->data() + at, data, static_cast<size_t>(n) * 4);
}

bool CanRead(const std::vector<uint8_t>& buf, size_t offset, size_t n) {
  return offset + n <= buf.size();
}

Status ReadU32(const std::vector<uint8_t>& buf, size_t* offset, uint32_t* v) {
  if (!CanRead(buf, *offset, 4)) return Status::InvalidArgument("truncated");
  std::memcpy(v, buf.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadI64(const std::vector<uint8_t>& buf, size_t* offset, int64_t* v) {
  if (!CanRead(buf, *offset, 8)) return Status::InvalidArgument("truncated");
  std::memcpy(v, buf.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

Status ReadF32(const std::vector<uint8_t>& buf, size_t* offset, float* v) {
  if (!CanRead(buf, *offset, 4)) return Status::InvalidArgument("truncated");
  std::memcpy(v, buf.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadFloats(const std::vector<uint8_t>& buf, size_t* offset, int64_t n,
                  float* dst) {
  if (!CanRead(buf, *offset, static_cast<size_t>(n) * 4)) {
    return Status::InvalidArgument("truncated");
  }
  if (n <= 0) return Status::OK();
  std::memcpy(dst, buf.data() + *offset, static_cast<size_t>(n) * 4);
  *offset += static_cast<size_t>(n) * 4;
  return Status::OK();
}

void SerializeTensor(const Tensor& t, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(t.shape().rank()), out);
  for (int i = 0; i < t.shape().rank(); ++i) PutI64(t.shape().dim(i), out);
  const int64_t n = t.num_elements();
  const float* data = t.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (data[i] != 0.0f) ++nnz;
  }
  if (nnz * 2 < n) {
    out->push_back(1);
    PutI64(nnz, out);
    for (int64_t i = 0; i < n; ++i) {
      if (data[i] != 0.0f) {
        PutU32(static_cast<uint32_t>(i), out);
        PutF32(data[i], out);
      }
    }
  } else {
    out->push_back(0);
    PutFloats(data, n, out);
  }
}

Result<Tensor> DeserializeTensor(const std::vector<uint8_t>& buf,
                                 size_t* offset) {
  uint32_t rank = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &rank));
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &dims[i]));
  }
  Shape shape(std::move(dims));
  if (!CanRead(buf, *offset, 1)) return Status::InvalidArgument("truncated");
  const uint8_t encoding = buf[(*offset)++];
  Tensor t(shape);
  if (encoding == 0) {
    VISTA_RETURN_IF_ERROR(
        ReadFloats(buf, offset, t.num_elements(), t.mutable_data()));
  } else {
    int64_t nnz = 0;
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &nnz));
    for (int64_t i = 0; i < nnz; ++i) {
      uint32_t idx = 0;
      float v = 0;
      VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &idx));
      VISTA_RETURN_IF_ERROR(ReadF32(buf, offset, &v));
      t.mutable_data()[idx] = v;
    }
  }
  return t;
}

void SerializeRecord(const Record& record, std::vector<uint8_t>* out) {
  PutI64(record.id, out);
  PutU32(static_cast<uint32_t>(record.struct_features.size()), out);
  PutFloats(record.struct_features.data(),
            static_cast<int64_t>(record.struct_features.size()), out);
  PutU32(static_cast<uint32_t>(record.images.size()), out);
  for (const Tensor& img : record.images) SerializeTensor(img, out);
  PutU32(static_cast<uint32_t>(record.features.size()), out);
  for (const Tensor& t : record.features.tensors()) SerializeTensor(t, out);
}

Result<Record> DeserializeRecord(const std::vector<uint8_t>& buffer,
                                 size_t* offset) {
  Record record;
  VISTA_RETURN_IF_ERROR(ReadI64(buffer, offset, &record.id));
  uint32_t n_struct = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_struct));
  record.struct_features.resize(n_struct);
  VISTA_RETURN_IF_ERROR(
      ReadFloats(buffer, offset, n_struct, record.struct_features.data()));
  uint32_t n_images = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_images));
  for (uint32_t i = 0; i < n_images; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor img, DeserializeTensor(buffer, offset));
    record.images.push_back(std::move(img));
  }
  uint32_t n_tensors = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_tensors));
  for (uint32_t i = 0; i < n_tensors; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor t, DeserializeTensor(buffer, offset));
    record.features.Append(std::move(t));
  }
  return record;
}

/// The old serial shuffle-join stage, serialized partitions in and
/// serialized partitions out (the state the next pipeline stage — persist
/// or wire transfer — consumes, and what the engine's zero-decode path
/// produces directly): decode every blob with the per-element codec, meter
/// the shuffle traffic record-by-record, funnel records into one global
/// bucket per output partition, unordered_map-join each bucket pair, and
/// re-encode each joined partition with the growing-buffer codec. Returns
/// the number of joined records (for cross-checking against the engine)
/// and accumulates the encoded output size into `*out_bytes`.
Result<int64_t> ShuffleJoinStage(
    const std::vector<std::vector<uint8_t>>& left_blobs,
    const std::vector<std::vector<uint8_t>>& right_blobs, int np,
    int64_t* out_bytes) {
  std::vector<std::vector<Record>> left_buckets(np);
  std::vector<std::vector<Record>> right_buckets(np);
  int64_t shuffle_bytes = 0;
  for (const auto& blob : left_blobs) {
    size_t offset = 0;
    while (offset < blob.size()) {
      VISTA_ASSIGN_OR_RETURN(Record r,
                             reference::DeserializeRecord(blob, &offset));
      shuffle_bytes += df::EstimateRecordBytes(r);
      left_buckets[df::ShuffleHashId(r.id) % np].push_back(std::move(r));
    }
  }
  for (const auto& blob : right_blobs) {
    size_t offset = 0;
    while (offset < blob.size()) {
      VISTA_ASSIGN_OR_RETURN(Record r,
                             reference::DeserializeRecord(blob, &offset));
      shuffle_bytes += df::EstimateRecordBytes(r);
      right_buckets[df::ShuffleHashId(r.id) % np].push_back(std::move(r));
    }
  }
  (void)shuffle_bytes;

  int64_t joined_total = 0;
  for (int i = 0; i < np; ++i) {
    std::vector<Record>& build =
        right_buckets[i].size() <= left_buckets[i].size() ? right_buckets[i]
                                                          : left_buckets[i];
    std::vector<Record>& probe =
        right_buckets[i].size() <= left_buckets[i].size() ? left_buckets[i]
                                                          : right_buckets[i];
    const bool build_is_right = &build == &right_buckets[i];
    std::unordered_map<int64_t, const Record*> hash_table;
    hash_table.reserve(build.size());
    for (const Record& r : build) hash_table.emplace(r.id, &r);
    std::vector<Record> joined;
    for (const Record& p : probe) {
      auto it = hash_table.find(p.id);
      if (it != hash_table.end()) {
        joined.push_back(build_is_right ? df::MergeRecords(p, *it->second)
                                        : df::MergeRecords(*it->second, p));
      }
    }
    std::vector<uint8_t> blob;
    for (const Record& r : joined) reference::SerializeRecord(r, &blob);
    *out_bytes += static_cast<int64_t>(blob.size());
    joined_total += static_cast<int64_t>(joined.size());
  }
  return joined_total;
}

/// The old persist path: old-codec-encode each output partition into a
/// growing buffer and write it to disk synchronously, one partition at a
/// time. Nothing overlaps.
Status PersistSync(const std::vector<std::vector<Record>>& partitions,
                   const std::string& spill_dir) {
  df::SpillManager spill(spill_dir);
  for (size_t i = 0; i < partitions.size(); ++i) {
    std::vector<uint8_t> blob;
    for (const Record& r : partitions[i]) {
      reference::SerializeRecord(r, &blob);
    }
    VISTA_RETURN_IF_ERROR(spill.Write(static_cast<int64_t>(i), blob));
  }
  return Status::OK();
}

}  // namespace reference

// ------------------------------------------------------------------------

/// Left side: image-bearing records (3x16x16 raw image + 2 struct fields).
std::vector<Record> MakeLeftRecords(int n) {
  Rng rng(41);
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), 1.0f};
    r.set_image(Tensor::RandomGaussian(Shape{3, 16, 16}, &rng));
    records.push_back(std::move(r));
  }
  return records;
}

/// Right side: two wide ~25%-dense CNN-feature vectors per record, the
/// shape of the paper's materialized convolutional layers (sparse after
/// ReLU, one tensor per materialized layer).
std::vector<Record> MakeRightRecords(int n, int64_t dim, int tensors) {
  Rng rng(42);
  std::vector<Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Record r;
    r.id = i;
    for (int k = 0; k < tensors; ++k) {
      Tensor t(Shape{dim});
      for (int64_t j = 0; j < dim; ++j) {
        if (rng.NextBool(0.25)) {
          t.set(j, static_cast<float>(rng.NextGaussian()));
        }
      }
      r.features.Append(std::move(t));
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<std::vector<uint8_t>> PartitionBlobs(const Table& table) {
  std::vector<std::vector<uint8_t>> blobs;
  for (const auto& p : table.partitions) {
    auto blob = p->ToBlob();
    if (blob.ok()) blobs.push_back(std::move(blob).value());
  }
  return blobs;
}

struct EngineRun {
  double join_ms = 0;
  int64_t joined_records = 0;
  std::vector<std::vector<uint8_t>> output_blobs;
  Status status;
};

/// Builds a fresh engine with unconstrained budgets, persists the inputs
/// serialized (untimed), then times the shuffle-hash Join alone — the same
/// stage the serial reference performs.
EngineRun RunEngineJoin(int threads, int src_parts, int np,
                        const std::vector<Record>& left_records,
                        const std::vector<Record>& right_records) {
  EngineRun run;
  df::EngineConfig config;
  config.num_workers = 1;
  config.cpus_per_worker = threads;
  df::Engine engine(config);
  auto left = engine.MakeTable(left_records, src_parts);
  auto right = engine.MakeTable(right_records, src_parts);
  if (!left.ok() || !right.ok()) {
    run.status = left.ok() ? right.status() : left.status();
    return run;
  }
  run.status = engine.Persist(&*left, df::PersistenceFormat::kSerialized);
  if (run.status.ok()) {
    run.status = engine.Persist(&*right, df::PersistenceFormat::kSerialized);
  }
  if (!run.status.ok()) return run;

  Stopwatch timer;
  auto joined = engine.Join(*left, *right, df::JoinStrategy::kShuffleHash, np);
  run.join_ms = timer.ElapsedSeconds() * 1e3;
  if (!joined.ok()) {
    run.status = joined.status();
    return run;
  }
  run.joined_records = joined->num_records();
  run.output_blobs = PartitionBlobs(*joined);
  return run;
}

int Main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const std::string out =
      FlagValue(argc, argv, "--out",
                smoke ? "BENCH_smoke_shuffle.json" : "BENCH_shuffle.json");
  Banner("shuffle", "parallel data-movement plane vs serial reference");
  BenchReporter reporter(
      "shuffle",
      "two-phase shuffle-join + one-allocation codec + async spill writer "
      "vs the serial gather / growing-buffer codec / sync-write reference");

  const int n = smoke ? 4096 : 8192;
  const int64_t feature_dim =
      std::atol(FlagValue(argc, argv, "--dim", "2048").c_str());
  const int feature_tensors =
      std::atoi(FlagValue(argc, argv, "--tensors", "2").c_str());
  const int src_parts = 8;
  const int np = 16;
  const int threads = 8;
  const int reps = smoke ? 3 : 5;

  std::printf("building %d image records + %d records with %dx %ld-dim "
              "sparse features...\n",
              n, n, feature_tensors, static_cast<long>(feature_dim));
  const std::vector<Record> left_records = MakeLeftRecords(n);
  const std::vector<Record> right_records =
      MakeRightRecords(n, feature_dim, feature_tensors);

  // Pre-partitioned serialized inputs for the reference path (same
  // bucketing the engine's MakeTable applies).
  std::vector<std::vector<uint8_t>> left_blobs, right_blobs;
  {
    df::EngineConfig setup_config;
    df::Engine setup(setup_config);
    auto l = setup.MakeTable(left_records, src_parts);
    auto r = setup.MakeTable(right_records, src_parts);
    if (!l.ok() || !r.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    left_blobs = PartitionBlobs(*l);
    right_blobs = PartitionBlobs(*r);
  }

  // --- Serial reference shuffle-join stage (best of `reps`).
  double serial_ms = 0;
  int64_t serial_joined = 0;
  int64_t serial_out_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    serial_out_bytes = 0;
    Stopwatch timer;
    auto joined = reference::ShuffleJoinStage(left_blobs, right_blobs, np,
                                              &serial_out_bytes);
    const double ms = timer.ElapsedSeconds() * 1e3;
    if (!joined.ok()) {
      std::fprintf(stderr, "reference join failed: %s\n",
                   joined.status().ToString().c_str());
      return 1;
    }
    serial_joined = *joined;
    serial_ms = rep == 0 ? ms : std::min(serial_ms, ms);
  }

  // --- Engine shuffle-join at `threads` threads (best of `reps`).
  EngineRun best;
  for (int rep = 0; rep < reps; ++rep) {
    EngineRun run =
        RunEngineJoin(threads, src_parts, np, left_records, right_records);
    if (!run.status.ok()) {
      std::fprintf(stderr, "engine join failed: %s\n",
                   run.status.ToString().c_str());
      return 1;
    }
    if (rep == 0 || run.join_ms < best.join_ms) {
      best = std::move(run);
    }
  }
  const double speedup = serial_ms / best.join_ms;
  std::printf(
      "shuffle-join of %d records -> %d partitions: serial %.1f ms, "
      "engine(%d threads) %.1f ms (%.2fx), joined %ld == %ld\n",
      2 * n, np, serial_ms, threads, best.join_ms, speedup,
      static_cast<long>(serial_joined),
      static_cast<long>(best.joined_records));
  if (serial_joined != best.joined_records) {
    std::fprintf(stderr, "joined record counts diverge\n");
    return 1;
  }
  // Both paths end serialized: the reference's re-encoded output must be
  // byte-for-byte the same size as the engine's spliced partitions.
  int64_t engine_out_bytes = 0;
  for (const auto& blob : best.output_blobs) {
    engine_out_bytes += static_cast<int64_t>(blob.size());
  }
  if (serial_out_bytes != engine_out_bytes) {
    std::fprintf(stderr, "serialized output sizes diverge: %ld vs %ld\n",
                 static_cast<long>(serial_out_bytes),
                 static_cast<long>(engine_out_bytes));
    return 1;
  }

  obs::Json join_section = obs::Json::Object();
  join_section.Set("records", obs::Json::Int(2 * n));
  join_section.Set("threads", obs::Json::Int(threads));
  join_section.Set("output_partitions", obs::Json::Int(np));
  join_section.Set("serial_ms", obs::Json::Num(serial_ms));
  join_section.Set("parallel_ms", obs::Json::Num(best.join_ms));
  join_section.Set("speedup", obs::Json::Num(speedup));
  reporter.AddSection("shuffle_join", std::move(join_section));

  // Decode the join output once (untimed) — it feeds the persist and
  // serialize sections below.
  std::vector<std::vector<Record>> output_parts;
  std::vector<Record> output_records;
  int64_t output_wire_bytes = 0;
  for (const auto& blob : best.output_blobs) {
    std::vector<Record> part;
    size_t offset = 0;
    while (offset < blob.size()) {
      auto r = df::DeserializeRecord(blob, &offset);
      if (!r.ok()) {
        std::fprintf(stderr, "output decode failed\n");
        return 1;
      }
      output_wire_bytes += df::SerializedRecordBytes(*r);
      output_records.push_back(*r);
      part.push_back(std::move(r).value());
    }
    output_parts.push_back(std::move(part));
  }

  // --- Serialized Persist of the join output through a storage-constrained
  // engine: most partitions must evict through the async spill writer, so a
  // non-zero queue high-water mark proves encode and disk write overlapped.
  // The old encode-everything-then-sync-write path runs for comparison.
  {
    double sync_ms = 0, async_ms = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch timer;
      Status st =
          reference::PersistSync(output_parts, "/tmp/vista_bench_shuffle_ref");
      const double ms = timer.ElapsedSeconds() * 1e3;
      if (!st.ok()) {
        std::fprintf(stderr, "reference persist failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      sync_ms = rep == 0 ? ms : std::min(sync_ms, ms);
    }

    df::EngineStats persist_stats;
    for (int rep = 0; rep < reps; ++rep) {
      df::EngineConfig config;
      config.num_workers = 1;
      config.cpus_per_worker = threads;
      // Room for ~1/4 of the output: the rest streams through the writer.
      config.budgets.storage = output_wire_bytes / 4;
      df::Engine engine(config);
      auto table = engine.MakeTable(output_records, np);
      if (!table.ok()) {
        std::fprintf(stderr, "persist setup failed\n");
        return 1;
      }
      Stopwatch timer;
      Status st = engine.Persist(&*table, df::PersistenceFormat::kSerialized);
      const double ms = timer.ElapsedSeconds() * 1e3;
      if (!st.ok()) {
        std::fprintf(stderr, "engine persist failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      if (rep == 0 || ms < async_ms) {
        async_ms = ms;
        persist_stats = engine.stats();
      }
    }
    std::printf(
        "persist of %zu output records: sync reference %.1f ms, async "
        "engine %.1f ms; spill queue depth peak %ld, %ld spills, %.1f MiB\n",
        output_records.size(), sync_ms, async_ms,
        static_cast<long>(persist_stats.spill_queue_depth_peak),
        static_cast<long>(persist_stats.num_spills),
        persist_stats.spill_bytes_written / (1024.0 * 1024.0));
    obs::Json overlap = obs::Json::Object();
    overlap.Set("records",
                obs::Json::Int(static_cast<int64_t>(output_records.size())));
    overlap.Set("sync_reference_ms", obs::Json::Num(sync_ms));
    overlap.Set("async_persist_ms", obs::Json::Num(async_ms));
    overlap.Set("queue_depth_peak",
                obs::Json::Int(persist_stats.spill_queue_depth_peak));
    overlap.Set("spill_bytes_written",
                obs::Json::Int(persist_stats.spill_bytes_written));
    overlap.Set("num_spills", obs::Json::Int(persist_stats.num_spills));
    reporter.AddSection("persist_overlap", std::move(overlap));
  }

  // --- Codec microbench on the joined output records (image + wide sparse
  // tensors per record): growing-buffer reference vs one-allocation codec.
  // Both reuse the buffer across reps so steady-state cost is measured.
  {
    const size_t sample_size = std::min<size_t>(output_records.size(), 1024);
    std::vector<Record> sample(output_records.begin(),
                               output_records.begin() + sample_size);
    double naive_ms = 0, optimized_ms = 0;
    std::vector<uint8_t> buf;
    for (int rep = 0; rep < 3; ++rep) {
      buf.clear();
      Stopwatch timer;
      for (const Record& r : sample) reference::SerializeRecord(r, &buf);
      const double ms = timer.ElapsedSeconds() * 1e3;
      naive_ms = rep == 0 ? ms : std::min(naive_ms, ms);
    }
    for (int rep = 0; rep < 3; ++rep) {
      buf.clear();
      Stopwatch timer;
      for (const Record& r : sample) df::SerializeRecord(r, &buf);
      const double ms = timer.ElapsedSeconds() * 1e3;
      optimized_ms = rep == 0 ? ms : std::min(optimized_ms, ms);
    }
    const double ratio = naive_ms / optimized_ms;
    std::printf("serialize %zu output records: old codec %.2f ms, "
                "one-allocation codec %.2f ms (%.2fx)\n",
                sample.size(), naive_ms, optimized_ms, ratio);
    obs::Json codec = obs::Json::Object();
    codec.Set("records", obs::Json::Int(static_cast<int64_t>(sample.size())));
    codec.Set("naive_ms", obs::Json::Num(naive_ms));
    codec.Set("optimized_ms", obs::Json::Num(optimized_ms));
    codec.Set("throughput_ratio", obs::Json::Num(ratio));
    reporter.AddSection("serialize", std::move(codec));
  }

  // --- Determinism: the parallel shuffle must be bit-identical to the
  // 1-thread run.
  {
    EngineRun serial_run =
        RunEngineJoin(1, src_parts, np, left_records, right_records);
    const bool identical = serial_run.status.ok() &&
                           serial_run.output_blobs == best.output_blobs;
    std::printf("determinism: 1-thread vs %d-thread outputs %s\n", threads,
                identical ? "bit-identical" : "DIVERGE");
    obs::Json det = obs::Json::Object();
    det.Set("bit_identical", obs::Json::Int(identical ? 1 : 0));
    reporter.AddSection("determinism", std::move(det));
    if (!identical) return 1;
  }

  Status st = reporter.Write(out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace vista::bench

int main(int argc, char** argv) { return vista::bench::Main(argc, argv); }
