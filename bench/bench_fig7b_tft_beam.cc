// Regenerates Figure 7(B): TensorFlow Transform on Beam/Flink versus Vista
// on Foods/ResNet50 with a 3-layer MLP downstream model, varying the
// number of layers explored. Paper shape: TFT+Beam is slightly faster when
// exploring only the last layer, but Vista clearly wins as more layers are
// explored, because TFT extracts all layers in one go (Eager-style) and
// the resulting memory pressure causes costly disk spills.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

/// The hand-tuned Flink configuration the paper found by trial and error:
/// parallelism 32 across the cluster (4 per node), 25 GB JVM heap, User
/// fraction raised to 60%.
SystemProfile FlinkManualProfile(const SystemEnv& env) {
  SystemProfile p;
  (void)env;
  p.name = "Flink-manual";
  p.pd = PdSystem::kSparkLike;  // Heap-managed with disk spills.
  p.memory.heap_bytes = GiB(25);
  p.memory.jvm_base_bytes = GiB(1);
  p.memory.user_bytes = static_cast<int64_t>(0.6 * GiB(25));
  p.memory.storage_bytes = static_cast<int64_t>(0.25 * GiB(25));
  p.memory.core_bytes = static_cast<int64_t>(0.15 * GiB(25));
  p.memory.allow_disk_spill = true;
  p.memory.cpus = 4;  // 32-way parallelism over 8 nodes.
  p.num_partitions = 512;
  p.join = df::JoinStrategy::kShuffleHash;
  p.persistence = df::PersistenceFormat::kSerialized;  // TFRecord files.
  return p;
}

Result<double> RunTft(int num_layers) {
  VISTA_ASSIGN_OR_RETURN(Roster roster, Roster::Default());
  VISTA_ASSIGN_OR_RETURN(const RosterEntry* entry,
                         roster.Lookup(dl::KnownCnn::kResNet50));
  VISTA_ASSIGN_OR_RETURN(
      TransferWorkload workload,
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kResNet50,
                                  num_layers, DownstreamModel::kMlp));
  const DataStats stats = FoodsDataStats();
  const SystemEnv env;
  sim::NodeResources node;
  // TFT feeds TF directly (no PD<->DL marshalling layer), which buys it a
  // modest inference-throughput edge over the TensorFrames path.
  node.node_peak_gflops *= 1.3;
  SystemProfile profile = FlinkManualProfile(env);
  SimExecutor executor(entry);

  // TFT's pipeline: join structured data with images, run the full CNN
  // once and write *all* requested layers out as TFRecord files, then
  // train the MLP per layer with TF/Horovod, re-reading that layer's
  // feature file every epoch.
  std::vector<sim::SimStage> stages;
  const int64_t n = stats.num_records;
  const int64_t np = profile.num_partitions;
  auto tasks = [&](double flops, int64_t dread, int64_t dwrite) {
    std::vector<sim::SimTask> out(static_cast<size_t>(np));
    for (auto& t : out) {
      t.flops = flops / static_cast<double>(np);
      t.disk_read_bytes = dread / np;
      t.disk_write_bytes = dwrite / np;
    }
    return out;
  };
  {
    sim::SimStage read;
    read.name = "read+join";
    read.fixed_seconds = static_cast<double>(n) * 0.010 /
                         std::pow(static_cast<double>(env.num_nodes), 0.8);
    read.tasks = tasks(0, n * (16 + stats.avg_image_file_bytes), 0);
    stages.push_back(std::move(read));
  }
  int64_t all_files = 0;
  std::vector<int64_t> file_bytes;
  for (int l : workload.layers) {
    file_bytes.push_back(executor.MaterializedLayerFileBytes(l, stats));
    all_files += file_bytes.back();
  }
  {
    sim::SimStage extract;
    extract.name = "extract-all-layers";
    extract.uses_dl = true;
    extract.dl_mem_per_thread = entry->memory.runtime_cpu_bytes;
    const double flops =
        static_cast<double>(
            entry->arch.layer(workload.layers.back()).cumulative_flops) *
        static_cast<double>(n);
    extract.tasks = tasks(flops, 0, all_files);
    // All layers of one partition buffered at once before the write.
    VISTA_ASSIGN_OR_RETURN(SizeEstimates est,
                           EstimateSizes(*entry, workload, stats));
    extract.user_mem_per_task =
        static_cast<int64_t>(2.0 * est.eager_udf_record_bytes * (n / np));
    stages.push_back(std::move(extract));
  }
  for (size_t i = 0; i < workload.layers.size(); ++i) {
    const int l = workload.layers[i];
    sim::SimStage train;
    train.name = "train:" + entry->arch.layer(l).name;
    train.uses_dl = true;
    const int64_t dim = stats.num_struct_features +
                        entry->arch.transfer_feature_count(l);
    const double params =
        static_cast<double>(dim) * 1024 + 1024.0 * 1024 + 1024;
    const int iters = workload.training_iterations;
    train.dl_mem_per_thread =
        static_cast<int64_t>(params) * 8 * 3 + kMiB;
    train.tasks =
        tasks(6.0 * params * static_cast<double>(n) * iters,
              file_bytes[i] * iters, 0);
    stages.push_back(std::move(train));
  }
  sim::ClusterSim cluster(env.num_nodes, node, profile.memory);
  sim::SimResult result = cluster.Run(stages);
  if (result.crashed()) {
    return Status::ResourceExhausted(result.status.message());
  }
  return result.total_seconds;
}

Result<double> RunVista(int num_layers) {
  Vista::Options options;
  options.cnn = dl::KnownCnn::kResNet50;
  options.num_layers = num_layers;
  options.model = DownstreamModel::kMlp;
  options.data = FoodsDataStats();
  VISTA_ASSIGN_OR_RETURN(Vista vista, Vista::Create(options));
  VISTA_ASSIGN_OR_RETURN(
      sim::SimResult result,
      vista.ExecuteSimulated(PdSystem::kSparkLike, sim::NodeResources{}));
  if (result.crashed()) {
    return Status::ResourceExhausted(result.status.message());
  }
  return result.total_seconds;
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 7(B)",
                "TFT+Beam/Flink vs Vista — Foods/ResNet50, MLP downstream");
  std::printf(
      "Paper: TFT slightly faster at 1 layer; Vista clearly wins from ~2+\n"
      "layers as TFT's all-layers-at-once extraction causes spills.\n\n");
  std::printf("%-8s | %-14s | %-14s | %s\n", "#layers", "TFT+Beam",
              "Vista", "Vista speedup");
  for (int k = 1; k <= 5; ++k) {
    auto tft = RunTft(k);
    auto vista = RunVista(k);
    if (!tft.ok() || !vista.ok()) {
      std::printf("%-8d | error\n", k);
      continue;
    }
    std::printf("%-8d | %10.1f min | %10.1f min | %.2fx\n", k, *tft / 60.0,
                *vista / 60.0, *tft / *vista);
  }
  return 0;
}
