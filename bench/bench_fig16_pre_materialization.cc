// Regenerates Table 2 and Figure 16 (Appendix B): sizes of
// pre-materialized feature layers for Foods, and runtimes of exploring the
// top-k layers with versus without a pre-materialized base layer. Paper
// shape: feature layer files are much larger than the raw JPEGs (0.26 GB),
// dramatically so for ResNet50's lower layers; pre-materialization helps
// AlexNet/VGG16 (saves recomputation) but for ResNet50's 5th layer the
// huge feature file's IO can cancel the savings.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

/// Layers-from-top explored in the paper's Appendix B sweep.
std::vector<int> BaseDepths(dl::KnownCnn cnn) {
  if (cnn == dl::KnownCnn::kResNet50) return {5, 4, 2, 1};
  return {4, 2, 1};
}

void Table2() {
  std::printf("\nTable 2: serialized sizes of pre-materialized layers "
              "(Foods; raw images are %s):\n",
              FormatBytes(20000LL * 14 * 1024).c_str());
  auto roster = Roster::Default().value();
  std::printf("%-10s", "CNN");
  for (int d : {1, 2, 4, 5}) std::printf(" | %6dth", d);
  std::printf("   (layer index from the top)\n");
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    const RosterEntry* entry = roster.Lookup(cnn).value();
    SimExecutor executor(entry);
    std::printf("%-10s", dl::KnownCnnToString(cnn));
    for (int d : {1, 2, 4, 5}) {
      if (d > entry->arch.num_layers() ||
          (cnn != dl::KnownCnn::kResNet50 && d == 5)) {
        std::printf(" | %8s", "-");
        continue;
      }
      const int layer = entry->arch.num_layers() - d;
      std::printf(" | %8s",
                  FormatBytes(executor.MaterializedLayerFileBytes(
                                  layer, FoodsDataStats()))
                      .c_str());
    }
    std::printf("\n");
  }
}

void Figure16(dl::KnownCnn cnn) {
  std::printf("\n%s: explore top-k layers, with vs without "
              "pre-materialized base:\n",
              dl::KnownCnnToString(cnn));
  std::printf("%-6s | %-14s | %-14s | %-14s\n", "k", "materialization",
              "with pre-mat", "without");
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(cnn).value();
  for (int k : BaseDepths(cnn)) {
    ExperimentSetup setup;
    setup.cnn = cnn;
    setup.num_layers = k;
    setup.data = FoodsDataStats();
    auto workload =
        TransferWorkload::TopLayers(roster, cnn, k).value();

    // Without pre-materialization: Staged/AJ from raw images.
    DrillDownConfig config;
    auto without = RunDrillDown(setup, config);

    // With: materialize the base layer first, then run from the file.
    SimExecutor executor(entry);
    OptimizerParams params;
    auto est = EstimateSizes(*entry, workload, setup.data).value();
    const int64_t udf_table = static_cast<int64_t>(
        params.alpha * static_cast<double>(setup.data.num_records) *
        static_cast<double>(est.udf_record_bytes));
    const int64_t np = ComputeNumPartitions(
        std::max(est.s_single, udf_table), 4, setup.env.num_nodes,
        params.p_max);
    SystemProfile profile = ExplicitProfile(
        setup.env, setup.pd, 4, entry->memory.runtime_cpu_bytes,
        entry->memory.serialized_bytes + 4 * (udf_table / np) * 2, np);
    SimExecutorConfig sim_config;
    sim_config.env = setup.env;
    sim_config.node = setup.node;
    sim_config.profile = profile;
    int64_t file_bytes = 0;
    auto pre = executor.SimulatePreMaterialization(workload, setup.data,
                                                   sim_config, &file_bytes);
    auto plan =
        CompilePlan(LogicalPlan::kStaged, workload, true).value();
    auto with = executor.Execute(plan, workload, setup.data, sim_config);

    std::printf("%-6d | %-14s | %-14s | %-14s\n", k,
                pre.ok() ? bench::Outcome(*pre).c_str() : "error",
                with.ok() ? bench::Outcome(*with).c_str() : "error",
                without.ok() ? bench::Outcome(*without).c_str() : "error");
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Table 2 + Figure 16 (Appendix B)",
                "Pre-materializing a base layer (Foods)");
  Table2();
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    Figure16(cnn);
  }
  return 0;
}
