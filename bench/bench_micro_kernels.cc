// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// convolution, partial inference, join operators, record serialization,
// and the Vista optimizer itself.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dataflow/engine.h"
#include "dl/model_zoo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "dl/dag.h"
#include "features/hog.h"
#include "tensor/gemm.h"
#include "vista/optimizer.h"

namespace vista {
namespace {

void BM_Conv2D3x3(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(1);
  Tensor input = Tensor::RandomGaussian(Shape{channels, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{channels, channels, 3, 3}, &rng);
  Tensor b(Shape{channels});
  for (auto _ : state) {
    auto out = Conv2D(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv2D3x3)->Arg(8)->Arg(16)->Arg(32);

void BM_MicroCnnInference(benchmark::State& state) {
  auto arch = dl::MicroAlexNetArch();
  auto model = dl::CnnModel::Instantiate(*arch, 3);
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  for (auto _ : state) {
    auto out = model->Run(img);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MicroCnnInference);

void BM_PartialInferenceTopLayer(benchmark::State& state) {
  // Staged execution's inner loop: one hop between adjacent fc layers.
  auto arch = dl::MicroAlexNetArch();
  auto model = dl::CnnModel::Instantiate(*arch, 3);
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  Tensor fc7 = model->RunTo(img, 6).value();
  for (auto _ : state) {
    auto out = model->RunRange(fc7, 7, 7);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartialInferenceTopLayer);

std::vector<df::Record> BenchRecords(int n, double density) {
  Rng rng(7);
  std::vector<df::Record> records;
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i % 2), 1.f, 2.f};
    Tensor t(Shape{512});
    for (int64_t j = 0; j < 512; ++j) {
      if (rng.NextBool(density)) t.set(j, static_cast<float>(rng.NextGaussian()));
    }
    r.features.Append(std::move(t));
    records.push_back(std::move(r));
  }
  return records;
}

void BM_RecordSerializeSparse(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto records = BenchRecords(64, density);
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    for (const auto& r : records) df::SerializeRecord(r, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RecordSerializeSparse)->Arg(13)->Arg(36)->Arg(100);

void BM_ShuffleHashJoin(benchmark::State& state) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  auto left = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  auto right = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  for (auto _ : state) {
    auto joined = engine.Join(left, right, df::JoinStrategy::kShuffleHash, 8);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ShuffleHashJoin);

void BM_BroadcastJoin(benchmark::State& state) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  auto left = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  auto right = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  for (auto _ : state) {
    auto joined = engine.Join(left, right, df::JoinStrategy::kBroadcast, 8);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BroadcastJoin);

void BM_OptimizerLatency(benchmark::State& state) {
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(dl::KnownCnn::kResNet50).value();
  auto workload =
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kResNet50, 5).value();
  DataStats stats;
  stats.num_records = 200000;
  stats.num_struct_features = 200;
  SystemEnv env;
  for (auto _ : state) {
    auto d = OptimizeFeatureTransfer(env, *entry, workload, stats);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OptimizerLatency);


void BM_Conv2DDirect32(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::RandomGaussian(Shape{16, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 16, 3, 3}, &rng);
  Tensor b(Shape{16});
  for (auto _ : state) {
    auto out = Conv2D(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2DDirect32);

void BM_Conv2DGemm32(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::RandomGaussian(Shape{16, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 16, 3, 3}, &rng);
  Tensor b(Shape{16});
  for (auto _ : state) {
    auto out = Conv2DGemm(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2DGemm32);

void BM_HogDescriptor(benchmark::State& state) {
  Rng rng(5);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  for (auto _ : state) {
    auto f = feat::HogFeatures(img);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HogDescriptor);

// Observability overhead: the per-event cost the instrumented hot paths
// pay. Counter adds must stay in the nanoseconds; a ScopedSpan is a mutex
// lock + clock reads, so it belongs on operators, not per-record loops.
void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("bench.latency_ms");
  double v = 0.013;
  for (auto _ : state) {
    h->Record(v);
    v = v * 1.37 + 0.001;
    if (v > 1000.0) v = 0.013;
  }
  benchmark::DoNotOptimize(h);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedLatency(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("bench.scoped_ms");
  for (auto _ : state) {
    obs::ScopedLatency latency(h);
    benchmark::DoNotOptimize(latency);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedLatency);

void BM_ObsScopedSpan(benchmark::State& state) {
  obs::TraceCollector collector;
  for (auto _ : state) {
    obs::ScopedSpan span(&collector, "bench", "micro");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpan);

void BM_ObsScopedSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "bench", "micro");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpanDisabled);

void BM_DagStagedPlanner(benchmark::State& state) {
  auto arch = dl::MicroDenseNetDag().value();
  for (auto _ : state) {
    auto plan = dl::PlanStagedDag(arch, {2, 4, 5});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_DagStagedPlanner);

}  // namespace
}  // namespace vista

BENCHMARK_MAIN();
