// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// convolution, partial inference, join operators, record serialization,
// and the Vista optimizer itself.
//
// `--smoke` skips google-benchmark and runs the kernel smoke suite
// instead: naive-vs-packed GEMM on a conv-shaped 256x1152x196 problem,
// batched-inference thread scaling, and the scratch-arena reuse counters,
// written as a machine-readable report (default BENCH_smoke_kernels.json,
// override with `--out <path>`) — the input to the CI bench-regression
// gate (scripts/bench_regression.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dataflow/engine.h"
#include "dl/model_zoo.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "dl/dag.h"
#include "features/hog.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernel.h"
#include "tensor/quant.h"
#include "tensor/scratch.h"
#include "vista/optimizer.h"

namespace vista {
namespace {

void BM_Conv2D3x3(benchmark::State& state) {
  const int64_t channels = state.range(0);
  Rng rng(1);
  Tensor input = Tensor::RandomGaussian(Shape{channels, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{channels, channels, 3, 3}, &rng);
  Tensor b(Shape{channels});
  for (auto _ : state) {
    auto out = Conv2D(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv2D3x3)->Arg(8)->Arg(16)->Arg(32);

void BM_MicroCnnInference(benchmark::State& state) {
  auto arch = dl::MicroAlexNetArch();
  auto model = dl::CnnModel::Instantiate(*arch, 3);
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  for (auto _ : state) {
    auto out = model->Run(img);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MicroCnnInference);

void BM_PartialInferenceTopLayer(benchmark::State& state) {
  // Staged execution's inner loop: one hop between adjacent fc layers.
  auto arch = dl::MicroAlexNetArch();
  auto model = dl::CnnModel::Instantiate(*arch, 3);
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  Tensor fc7 = model->RunTo(img, 6).value();
  for (auto _ : state) {
    auto out = model->RunRange(fc7, 7, 7);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartialInferenceTopLayer);

std::vector<df::Record> BenchRecords(int n, double density) {
  Rng rng(7);
  std::vector<df::Record> records;
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i % 2), 1.f, 2.f};
    Tensor t(Shape{512});
    for (int64_t j = 0; j < 512; ++j) {
      if (rng.NextBool(density)) t.set(j, static_cast<float>(rng.NextGaussian()));
    }
    r.features.Append(std::move(t));
    records.push_back(std::move(r));
  }
  return records;
}

void BM_RecordSerializeSparse(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  auto records = BenchRecords(64, density);
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    for (const auto& r : records) df::SerializeRecord(r, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RecordSerializeSparse)->Arg(13)->Arg(36)->Arg(100);

void BM_ShuffleHashJoin(benchmark::State& state) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  auto left = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  auto right = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  for (auto _ : state) {
    auto joined = engine.Join(left, right, df::JoinStrategy::kShuffleHash, 8);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ShuffleHashJoin);

void BM_BroadcastJoin(benchmark::State& state) {
  df::EngineConfig config;
  config.cpus_per_worker = 4;
  df::Engine engine(config);
  auto left = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  auto right = engine.MakeTable(BenchRecords(2000, 0.1), 8).value();
  for (auto _ : state) {
    auto joined = engine.Join(left, right, df::JoinStrategy::kBroadcast, 8);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BroadcastJoin);

void BM_OptimizerLatency(benchmark::State& state) {
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(dl::KnownCnn::kResNet50).value();
  auto workload =
      TransferWorkload::TopLayers(roster, dl::KnownCnn::kResNet50, 5).value();
  DataStats stats;
  stats.num_records = 200000;
  stats.num_struct_features = 200;
  SystemEnv env;
  for (auto _ : state) {
    auto d = OptimizeFeatureTransfer(env, *entry, workload, stats);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OptimizerLatency);


void BM_Conv2DDirect32(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::RandomGaussian(Shape{16, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 16, 3, 3}, &rng);
  Tensor b(Shape{16});
  for (auto _ : state) {
    auto out = Conv2D(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2DDirect32);

void BM_Conv2DGemm32(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::RandomGaussian(Shape{16, 32, 32}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{16, 16, 3, 3}, &rng);
  Tensor b(Shape{16});
  for (auto _ : state) {
    auto out = Conv2DGemm(input, w, b, 1, 1);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2DGemm32);

void BM_HogDescriptor(benchmark::State& state) {
  Rng rng(5);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  for (auto _ : state) {
    auto f = feat::HogFeatures(img);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HogDescriptor);

// Observability overhead: the per-event cost the instrumented hot paths
// pay. Counter adds must stay in the nanoseconds; a ScopedSpan is a mutex
// lock + clock reads, so it belongs on operators, not per-record loops.
void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("bench.counter");
  for (auto _ : state) {
    c->Add(1);
  }
  benchmark::DoNotOptimize(c);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("bench.latency_ms");
  double v = 0.013;
  for (auto _ : state) {
    h->Record(v);
    v = v * 1.37 + 0.001;
    if (v > 1000.0) v = 0.013;
  }
  benchmark::DoNotOptimize(h);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedLatency(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* h = registry.histogram("bench.scoped_ms");
  for (auto _ : state) {
    obs::ScopedLatency latency(h);
    benchmark::DoNotOptimize(latency);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedLatency);

void BM_ObsScopedSpan(benchmark::State& state) {
  obs::TraceCollector collector;
  for (auto _ : state) {
    obs::ScopedSpan span(&collector, "bench", "micro");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpan);

void BM_ObsScopedSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "bench", "micro");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpanDisabled);

void BM_DagStagedPlanner(benchmark::State& state) {
  auto arch = dl::MicroDenseNetDag().value();
  for (auto _ : state) {
    auto plan = dl::PlanStagedDag(arch, {2, 4, 5});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_DagStagedPlanner);

/// Median-of-reps wall time of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedSeconds() * 1e3);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// The kernel smoke suite. Latency numbers are machine-dependent and only
/// reported; the regression gate compares the machine-independent ratios
/// (speedup, efficiency) so a slower CI runner does not fail the build.
int RunKernelSmoke(int argc, char** argv) {
  bench::Banner("kernels", "packed GEMM and batched inference smoke suite");
  bench::BenchReporter reporter(
      "micro_kernels",
      "smoke: naive vs packed GEMM (256x1152x196), batched inference "
      "scaling, scratch arena reuse");
  obs::Registry registry;
  // fp32 packed time on the conv shape; the int8 section below reports its
  // throughput as a ratio against this.
  double fp32_packed_ms = 0.0;

  // --- Packed vs naive GEMM on the conv-shaped problem: 256 filters over
  // a 128-channel 3x3 patch matrix (k = 1152) at 14x14 output (n = 196).
  {
    const int64_t m = 256, k = 1152, n = 196;
    Rng rng(1);
    Tensor a = Tensor::RandomGaussian(Shape{m, k}, &rng);
    Tensor b = Tensor::RandomGaussian(Shape{k, n}, &rng);
    (void)MatMulReference(a, b);  // Warm-up (page-in, arena growth).
    (void)MatMul(a, b);
    const double naive_ms =
        TimeMs(5, [&] { benchmark::DoNotOptimize(MatMulReference(a, b)); });
    const int64_t flops_before = GemmFlopsTotal();
    const double packed_ms =
        TimeMs(15, [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
    const int64_t flops_per_call = 2 * m * n * k;
    const double gflops = static_cast<double>(flops_per_call) /
                          (packed_ms * 1e-3) / 1e9;
    const double speedup = naive_ms / packed_ms;
    registry.gauge("gemm_gflops")->Set(static_cast<int64_t>(gflops));
    (void)flops_before;
    fp32_packed_ms = packed_ms;

    obs::Json gemm = obs::Json::Object();
    gemm.Set("m", obs::Json::Int(m));
    gemm.Set("k", obs::Json::Int(k));
    gemm.Set("n", obs::Json::Int(n));
    gemm.Set("naive_ms", obs::Json::Num(naive_ms));
    gemm.Set("packed_ms", obs::Json::Num(packed_ms));
    gemm.Set("speedup", obs::Json::Num(speedup));
    gemm.Set("gflops", obs::Json::Num(gflops));
    reporter.AddSection("gemm_256x1152x196", std::move(gemm));
    std::printf("gemm 256x1152x196: naive %.2f ms, packed %.2f ms "
                "(%.2fx, %.1f GFLOP/s)\n",
                naive_ms, packed_ms, speedup, gflops);
  }

  // --- Quantized GEMM on the same conv shape: symmetric int8 inputs, the
  // per-row dequant epilogue fused. The gate tracks the machine-independent
  // speedup over the fp32 packed kernel and the accuracy of the dequantized
  // product against the fp32 product of the same real values.
  {
    const int64_t m = 256, k = 1152, n = 196;
    Rng rng(3);
    Tensor a = Tensor::RandomGaussian(Shape{m, k}, &rng);
    Tensor b = Tensor::RandomGaussian(Shape{k, n}, &rng);
    const float a_scale = SymmetricScale(MaxAbs(a.data(), a.num_elements()));
    const float b_scale = SymmetricScale(MaxAbs(b.data(), b.num_elements()));
    std::vector<int8_t> a8(m * k), b8(k * n);
    QuantizeSymmetric(a.data(), m * k, a_scale, a8.data());
    QuantizeSymmetric(b.data(), k * n, b_scale, b8.data());
    const std::vector<float> scales(m, a_scale * b_scale);
    std::vector<float> c(m * n);
    GemmInt8Epilogue epilogue;
    epilogue.scale = scales.data();
    KernelScratch& scratch = KernelScratch::ThreadLocal();
    const auto run = [&] {
      GemmPackedInt8(m, n, k, a8.data(), k, b8.data(), n, c.data(), n,
                     epilogue, &scratch);
      benchmark::DoNotOptimize(c.data());
    };
    run();  // Warm-up.
    const double int8_ms = TimeMs(15, run);
    const double gops =
        static_cast<double>(2 * m * n * k) / (int8_ms * 1e-3) / 1e9;
    registry.gauge("gemm_gops_int8")->Set(static_cast<int64_t>(gops));
    const double speedup_vs_fp32 = fp32_packed_ms / int8_ms;

    auto ref = MatMul(a, b);
    double err_sq = 0.0, ref_sq = 0.0;
    for (int64_t i = 0; i < m * n; ++i) {
      const double d = c[i] - ref->at(i);
      err_sq += d * d;
      ref_sq += static_cast<double>(ref->at(i)) * ref->at(i);
    }
    const double rel_l2_error = std::sqrt(err_sq / ref_sq);
    const double kErrorBound = 0.05;

    obs::Json q = obs::Json::Object();
    q.Set("m", obs::Json::Int(m));
    q.Set("k", obs::Json::Int(k));
    q.Set("n", obs::Json::Int(n));
    q.Set("kernel", obs::Json::Str(GemmInt8KernelName()));
    q.Set("int8_ms", obs::Json::Num(int8_ms));
    q.Set("fp32_packed_ms", obs::Json::Num(fp32_packed_ms));
    q.Set("gops", obs::Json::Num(gops));
    q.Set("speedup_vs_fp32", obs::Json::Num(speedup_vs_fp32));
    q.Set("rel_l2_error", obs::Json::Num(rel_l2_error));
    q.Set("accuracy_within_bound",
          obs::Json::Num(rel_l2_error <= kErrorBound ? 1.0 : 0.0));
    reporter.AddSection("gemm_int8_256x1152x196", std::move(q));
    std::printf("gemm int8 256x1152x196 [%s]: %.2f ms (%.2fx vs fp32 "
                "packed, %.1f GOP/s, rel L2 err %.4f)\n",
                GemmInt8KernelName(), int8_ms, speedup_vs_fp32, gops,
                rel_l2_error);
  }

  // --- Implicit-GEMM convolution vs the explicit im2col path on a
  // VGG-style 3x3 conv (64 ch, 112x112, 48 filters — a large-spatial
  // shape where the materialized 29 MB patch matrix spills the L2 cache,
  // so the fused packer's single pass over the input shows up as
  // wall-clock). The gate tracks the machine-independent speedup, the
  // bit-identity indicator (the implicit packer must reproduce the
  // materialized expansion's output exactly), and the deterministic
  // scratch-footprint ratio measured on fresh arenas (explicit = im2col
  // expansion + packed panels, implicit = panels only).
  const int64_t conv_c = 64, conv_hw = 112, conv_f = 48;
  const int conv_k = 3, conv_s = 1, conv_p = 1;
  Rng conv_rng(6);
  Tensor conv_in =
      Tensor::RandomGaussian(Shape{conv_c, conv_hw, conv_hw}, &conv_rng);
  Tensor conv_w = Tensor::RandomGaussian(
      Shape{conv_f, conv_c, conv_k, conv_k}, &conv_rng);
  Tensor conv_b = Tensor::RandomGaussian(Shape{conv_f}, &conv_rng);
  {
    const auto ex = [&] {
      return Conv2DGemmEx(conv_in, conv_w, conv_b, conv_s, conv_p, 1,
                          /*relu=*/false, nullptr);
    };
    const auto im = [&] {
      return Conv2DGemmImplicit(conv_in, conv_w, conv_b, conv_s, conv_p, 1,
                                /*relu=*/false, nullptr);
    };
    auto ex_out = ex();  // Warm-up + the bit-identity operands.
    auto im_out = im();
    const bool identical =
        ex_out.ok() && im_out.ok() &&
        std::memcmp(ex_out->data(), im_out->data(),
                    static_cast<size_t>(ex_out->num_elements()) *
                        sizeof(float)) == 0;
    const double ex_ms = TimeMs(9, [&] { benchmark::DoNotOptimize(ex()); });
    const double im_ms = TimeMs(9, [&] { benchmark::DoNotOptimize(im()); });
    const double speedup = ex_ms / im_ms;

    // Footprint on fresh arenas (deterministic: pure Acquire accounting).
    const int64_t rows = conv_c * conv_k * conv_k;
    const int64_t spatial = conv_hw * conv_hw;
    std::vector<float> c(static_cast<size_t>(conv_f * spatial));
    KernelScratch implicit_arena;
    ConvPatchView view;
    view.input = conv_in.data();
    view.h = conv_hw;
    view.w = conv_hw;
    view.kernel = conv_k;
    view.stride = conv_s;
    view.pad = conv_p;
    view.w_out = conv_hw;
    GemmPackedConv(conv_f, spatial, rows, conv_w.data(), rows, view,
                   c.data(), spatial, GemmEpilogue{}, &implicit_arena);
    auto cols = Im2Col(conv_in, conv_k, conv_s, conv_p, 1);
    KernelScratch explicit_arena;
    float* buf = explicit_arena.Acquire(KernelScratch::Slot::kIm2Col,
                                        static_cast<size_t>(rows * spatial));
    std::memcpy(buf, cols->data(),
                static_cast<size_t>(rows * spatial) * sizeof(float));
    GemmPacked(conv_f, spatial, rows, conv_w.data(), rows, buf, spatial,
               c.data(), spatial, GemmEpilogue{}, &explicit_arena);
    const double temp_ratio =
        static_cast<double>(explicit_arena.peak_bytes()) /
        static_cast<double>(implicit_arena.peak_bytes());

    obs::Json ic = obs::Json::Object();
    ic.Set("channels", obs::Json::Int(conv_c));
    ic.Set("hw", obs::Json::Int(conv_hw));
    ic.Set("filters", obs::Json::Int(conv_f));
    ic.Set("im2col_ms", obs::Json::Num(ex_ms));
    ic.Set("implicit_ms", obs::Json::Num(im_ms));
    ic.Set("implicit_speedup_vs_im2col", obs::Json::Num(speedup));
    ic.Set("bit_identical", obs::Json::Num(identical ? 1.0 : 0.0));
    ic.Set("implicit_temp_bytes",
           obs::Json::Int(implicit_arena.peak_bytes()));
    ic.Set("im2col_temp_bytes", obs::Json::Int(explicit_arena.peak_bytes()));
    ic.Set("conv_temp_bytes_ratio", obs::Json::Num(temp_ratio));
    reporter.AddSection("implicit_conv", std::move(ic));
    std::printf("implicit conv 64x112x112 k3: im2col %.2f ms, implicit "
                "%.2f ms (%.2fx, bit-identical %d, temp ratio %.1fx)\n",
                ex_ms, im_ms, speedup, identical ? 1 : 0, temp_ratio);
  }

  // --- Int8 implicit conv vs the legacy fp32-im2col-then-quantize detour
  // on the same shape: materialize the expansion, quantize it, run the
  // memory-sourced int8 kernel — versus quantizing during the gather.
  {
    auto qw = QuantizeWeightsPerChannel(conv_w);
    const float act_scale =
        SymmetricScale(MaxAbs(conv_in.data(), conv_in.num_elements()));
    const int64_t rows = conv_c * conv_k * conv_k;
    const int64_t spatial = conv_hw * conv_hw;
    std::vector<float> scales(static_cast<size_t>(conv_f));
    for (int64_t i = 0; i < conv_f; ++i) {
      scales[static_cast<size_t>(i)] =
          qw->scales[static_cast<size_t>(i)] * act_scale;
    }
    std::vector<int8_t> cols_q(static_cast<size_t>(rows * spatial));
    Tensor legacy_out(Shape{conv_f, conv_hw, conv_hw});
    KernelScratch& scratch = KernelScratch::ThreadLocal();
    const auto legacy = [&] {
      auto cols = Im2Col(conv_in, conv_k, conv_s, conv_p, 1);
      QuantizeSymmetric(cols->data(), rows * spatial, act_scale,
                        cols_q.data());
      GemmInt8Epilogue epilogue;
      epilogue.scale = scales.data();
      epilogue.bias = conv_b.data();
      GemmPackedInt8(conv_f, spatial, rows, qw->data.data(), rows,
                     cols_q.data(), spatial, legacy_out.mutable_data(),
                     spatial, epilogue, &scratch);
      benchmark::DoNotOptimize(legacy_out.mutable_data());
    };
    const auto implicit = [&] {
      return Conv2DGemmInt8(conv_in, *qw, conv_b, conv_s, conv_p, 1,
                            /*relu=*/false, act_scale, nullptr);
    };
    legacy();  // Warm-up + bit-identity operands.
    auto im_out = implicit();
    const bool identical =
        im_out.ok() &&
        std::memcmp(legacy_out.data(), im_out->data(),
                    static_cast<size_t>(legacy_out.num_elements()) *
                        sizeof(float)) == 0;
    const double legacy_ms = TimeMs(9, legacy);
    const double im_ms =
        TimeMs(9, [&] { benchmark::DoNotOptimize(implicit()); });
    const double speedup = legacy_ms / im_ms;
    obs::Json iq = obs::Json::Object();
    iq.Set("kernel", obs::Json::Str(GemmInt8KernelName()));
    iq.Set("legacy_ms", obs::Json::Num(legacy_ms));
    iq.Set("implicit_ms", obs::Json::Num(im_ms));
    iq.Set("implicit_speedup_vs_im2col", obs::Json::Num(speedup));
    iq.Set("bit_identical", obs::Json::Num(identical ? 1.0 : 0.0));
    reporter.AddSection("implicit_conv_int8", std::move(iq));
    std::printf("implicit conv int8 64x112x112 k3 [%s]: legacy %.2f ms, "
                "implicit %.2f ms (%.2fx, bit-identical %d)\n",
                GemmInt8KernelName(), legacy_ms, im_ms, speedup,
                identical ? 1 : 0);
  }

  // --- Batched partial inference: 8 images through MicroAlexNet, serial
  // vs a 4-thread pool in inter-image mode. Efficiency is reported both
  // raw (speedup / threads) and normalized to the cores actually available
  // — on a 1-2 core CI runner the raw number cannot approach 1 no matter
  // how good the scheduling is.
  {
    auto arch = dl::MicroAlexNetArch();
    auto model = dl::CnnModel::Instantiate(*arch, 3);
    model->EnableProfiling(&registry);  // dl.forward_ms.* + dl.flops.*
    Rng rng(2);
    std::vector<Tensor> images;
    for (int i = 0; i < 8; ++i) {
      images.push_back(Tensor::RandomGaussian(Shape{3, 32, 32}, &rng));
    }
    const int last = arch->num_layers() - 1;
    (void)model->RunRangeBatch(images, 0, last);  // Warm-up.
    const double serial_ms = TimeMs(5, [&] {
      benchmark::DoNotOptimize(model->RunRangeBatch(images, 0, last));
    });
    const int threads = 4;
    ThreadPool pool(threads);
    dl::CnnOptions opts;
    opts.pool = &pool;
    opts.parallelism = dl::CnnParallelism::kInterImage;
    (void)model->RunRangeBatch(images, 0, last, opts);
    const double parallel_ms = TimeMs(5, [&] {
      benchmark::DoNotOptimize(model->RunRangeBatch(images, 0, last, opts));
    });
    const double speedup = serial_ms / parallel_ms;
    const int available =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    const int effective = std::min(threads, available);
    obs::Json batched = obs::Json::Object();
    batched.Set("images", obs::Json::Int(8));
    batched.Set("threads", obs::Json::Int(threads));
    batched.Set("available_cores", obs::Json::Int(available));
    batched.Set("serial_ms", obs::Json::Num(serial_ms));
    batched.Set("parallel_ms", obs::Json::Num(parallel_ms));
    batched.Set("speedup", obs::Json::Num(speedup));
    batched.Set("efficiency_raw", obs::Json::Num(speedup / threads));
    batched.Set("efficiency_normalized",
                obs::Json::Num(speedup / effective));
    reporter.AddSection("batched_inference", std::move(batched));
    std::printf("batched inference x8: serial %.2f ms, %d threads %.2f ms "
                "(%.2fx, efficiency %.2f raw / %.2f over %d cores)\n",
                serial_ms, threads, parallel_ms, speedup, speedup / threads,
                speedup / effective, effective);
  }

  // --- Scratch arena: after the runs above every kernel call must be
  // served from the warm arena (the zero-alloc contract gemm_test asserts).
  {
    KernelScratch& scratch = KernelScratch::ThreadLocal();
    obs::Json arena = obs::Json::Object();
    arena.Set("allocations", obs::Json::Int(scratch.allocations()));
    arena.Set("reuses", obs::Json::Int(scratch.reuses()));
    arena.Set("capacity_floats", obs::Json::Int(scratch.capacity_floats()));
    reporter.AddSection("scratch_arena", std::move(arena));
  }

  // Full metrics snapshot: the gemm_gflops gauge plus the per-layer
  // dl.forward_ms histograms and dl.flops counters from profiling.
  reporter.AddSection("metrics", obs::MetricsJson(registry));

  const std::string out =
      bench::FlagValue(argc, argv, "--out", "BENCH_smoke_kernels.json");
  const Status written = reporter.Write(out);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace vista

int main(int argc, char** argv) {
  if (vista::bench::HasFlag(argc, argv, "--smoke")) {
    return vista::RunKernelSmoke(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
