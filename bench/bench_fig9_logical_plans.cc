// Regenerates Figure 9: runtimes of the logical execution plan
// alternatives (Eager/Staged x inference Before-Join/After-Join) while
// varying the number of layers explored and the data scale. Paper shape:
// all plans comparable at low scale / few layers; Eager plans degrade
// sharply at high |L| or scale (disk spills of large intermediates),
// especially for ResNet50; AJ is comparable to or marginally faster than
// BJ at larger scales — validating Vista's Staged/AJ choice.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct PlanChoice {
  const char* label;
  LogicalPlan plan;
};

const PlanChoice kPlans[] = {
    {"Eager/BJ", LogicalPlan::kEagerReordered},
    {"Eager/AJ", LogicalPlan::kEager},
    {"Staged/BJ", LogicalPlan::kStagedReordered},
    {"Staged/AJ", LogicalPlan::kStaged},
};

void SweepLayers(dl::KnownCnn cnn, double scale, int max_layers) {
  std::printf("\n(%s, data scale %gX) runtime vs #layers:\n",
              dl::KnownCnnToString(cnn), scale);
  std::printf("%-10s", "#layers");
  for (const auto& p : kPlans) std::printf(" | %-12s", p.label);
  std::printf("\n");
  for (int k = 1; k <= max_layers; ++k) {
    std::printf("%-10d", k);
    for (const auto& p : kPlans) {
      ExperimentSetup setup;
      setup.cnn = cnn;
      setup.num_layers = k;
      setup.data = FoodsDataStats(scale);
      DrillDownConfig config;
      config.plan = p.plan;
      auto r = RunDrillDown(setup, config);
      if (!r.ok()) {
        std::printf(" | %-12s", "error");
        continue;
      }
      std::printf(" | %-12s", bench::Outcome(*r).c_str());
    }
    std::printf("\n");
  }
}

void SweepScale(dl::KnownCnn cnn, int num_layers) {
  std::printf("\n(%s, %dL) runtime vs data scale:\n",
              dl::KnownCnnToString(cnn), num_layers);
  std::printf("%-10s", "scale");
  for (const auto& p : kPlans) std::printf(" | %-12s", p.label);
  std::printf("\n");
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    std::printf("%-9gX", scale);
    for (const auto& p : kPlans) {
      ExperimentSetup setup;
      setup.cnn = cnn;
      setup.num_layers = num_layers;
      setup.data = FoodsDataStats(scale);
      DrillDownConfig config;
      config.plan = p.plan;
      auto r = RunDrillDown(setup, config);
      if (!r.ok()) {
        std::printf(" | %-12s", "error");
        continue;
      }
      std::printf(" | %-12s", bench::Outcome(*r).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 9",
                "Logical execution plan alternatives (Foods drill-down, "
                "cpu=4, 8 nodes)");
  // Panels (1)-(2): vary #layers at 2X scale.
  SweepLayers(dl::KnownCnn::kAlexNet, 2.0, 4);
  SweepLayers(dl::KnownCnn::kResNet50, 2.0, 5);
  // Panels (3)-(4): vary scale at the paper's |L|.
  SweepScale(dl::KnownCnn::kAlexNet, 4);
  SweepScale(dl::KnownCnn::kResNet50, 5);
  return 0;
}
