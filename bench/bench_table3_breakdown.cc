// Regenerates Table 3 and Figure 17 (Appendix C): per-layer runtime
// breakdown (partial CNN inference + downstream training per layer, plus
// the image-read time) for 1-8 worker nodes, and the drill-down speedup of
// each component. Paper shape: the bottom-most explored layer dominates
// (inference from raw images); image reads speed up sub-linearly (HDFS
// small-files); inference+training speeds up near-linearly (slightly
// super-linear for ResNet50).
//
// `--smoke` runs a tiny configuration (AlexNet, 2 layers, 1-2 nodes) and
// writes a machine-readable report (default BENCH_smoke.json, override with
// `--out <path>`) — the CI smoke artifact.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct Breakdown {
  std::map<std::string, double> per_layer_seconds;  // layer name -> seconds.
  double read_images_seconds = 0;
  double total_seconds = 0;
  sim::SimResult sim;
};

Result<Breakdown> Run(dl::KnownCnn cnn, int num_layers, int nodes,
                      double scale) {
  ExperimentSetup setup;
  setup.cnn = cnn;
  setup.num_layers = num_layers;
  setup.data = FoodsDataStats(scale);
  setup.env.num_nodes = nodes;
  DrillDownConfig config;
  VISTA_ASSIGN_OR_RETURN(sim::SimResult r, RunDrillDown(setup, config));
  if (r.crashed()) return Status::ResourceExhausted(r.status.message());
  Breakdown out;
  out.total_seconds = r.total_seconds;
  for (const auto& stage : r.stages) {
    if (stage.name.rfind("read:images", 0) == 0) {
      out.read_images_seconds += stage.seconds;
    } else if (stage.name.rfind("inference:", 0) == 0 ||
               stage.name.rfind("train:", 0) == 0) {
      out.per_layer_seconds[stage.name.substr(stage.name.find(':') + 1)] +=
          stage.seconds;
    }
  }
  out.sim = std::move(r);
  return out;
}

void Table3(dl::KnownCnn cnn, int num_layers, const std::vector<int>& nodes,
            double scale, bench::BenchReporter* reporter) {
  std::printf("\n%s/%dL: per-layer time (CNN inference + downstream "
              "training), minutes:\n",
              dl::KnownCnnToString(cnn), num_layers);
  std::map<int, Breakdown> runs;
  for (int n : nodes) {
    const std::string label = std::string(dl::KnownCnnToString(cnn)) + "/" +
                              std::to_string(num_layers) + "L@" +
                              std::to_string(n) + "nodes";
    auto r = Run(cnn, num_layers, n, scale);
    if (!r.ok()) {
      std::printf("  error at %d nodes: %s\n", n,
                  r.status().ToString().c_str());
      if (reporter != nullptr) reporter->AddError(label, r.status());
      return;
    }
    if (reporter != nullptr) reporter->AddSimRun(label, r->sim);
    runs[n] = std::move(*r);
  }
  std::printf("%-12s", "layer");
  for (int n : nodes) std::printf(" | %5d node%s", n, n == 1 ? " " : "s");
  std::printf("\n");
  for (const auto& [layer, seconds] : runs[nodes.front()].per_layer_seconds) {
    (void)seconds;
    std::printf("%-12s", layer.c_str());
    for (int n : nodes) {
      std::printf(" | %10.1f", runs[n].per_layer_seconds[layer] / 60.0);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "total");
  for (int n : nodes) {
    std::printf(" | %10.1f", runs[n].total_seconds / 60.0);
  }
  std::printf("\n%-12s", "read images");
  for (int n : nodes) {
    std::printf(" | %10.1f", runs[n].read_images_seconds / 60.0);
  }
  std::printf("\n");

  // Figure 17: component speedups from the smallest to the largest cluster.
  const Breakdown& lo = runs[nodes.front()];
  const Breakdown& hi = runs[nodes.back()];
  double compute_lo = 0, compute_hi = 0;
  for (const auto& [layer, seconds] : lo.per_layer_seconds) {
    compute_lo += seconds;
    compute_hi += runs[nodes.back()].per_layer_seconds[layer];
  }
  std::printf("Fig 17 speedups @%d nodes: inference+train %.1fx, "
              "read images %.1fx\n",
              nodes.back(), compute_lo / compute_hi,
              lo.read_images_seconds / hi.read_images_seconds);
}

}  // namespace
}  // namespace vista

int main(int argc, char** argv) {
  using namespace vista;
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  bench::Banner("Table 3 + Figure 17 (Appendix C)",
                "Per-layer runtime breakdown and component speedups "
                "(Foods, Staged/AJ)");
  bench::BenchReporter reporter(
      "table3_breakdown",
      smoke ? "smoke: AlexNet/2L drill-down breakdown, 1-2 nodes"
            : "per-layer drill-down breakdown, 1-8 nodes");
  if (smoke) {
    Table3(dl::KnownCnn::kAlexNet, 2, {1, 2}, 0.25, &reporter);
  } else {
    for (auto cnn : {dl::KnownCnn::kResNet50, dl::KnownCnn::kAlexNet,
                     dl::KnownCnn::kVgg16}) {
      Table3(cnn, PaperNumLayers(cnn), {1, 2, 4, 8}, 1.0, &reporter);
    }
  }
  const std::string out = bench::FlagValue(
      argc, argv, "--out", smoke ? "BENCH_smoke.json" : "");
  if (!out.empty()) {
    Status st = reporter.Write(out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
