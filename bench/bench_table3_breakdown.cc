// Regenerates Table 3 and Figure 17 (Appendix C): per-layer runtime
// breakdown (partial CNN inference + downstream training per layer, plus
// the image-read time) for 1-8 worker nodes, and the drill-down speedup of
// each component. Paper shape: the bottom-most explored layer dominates
// (inference from raw images); image reads speed up sub-linearly (HDFS
// small-files); inference+training speeds up near-linearly (slightly
// super-linear for ResNet50).

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct Breakdown {
  std::map<std::string, double> per_layer_seconds;  // layer name -> seconds.
  double read_images_seconds = 0;
  double total_seconds = 0;
};

Result<Breakdown> Run(dl::KnownCnn cnn, int nodes) {
  ExperimentSetup setup;
  setup.cnn = cnn;
  setup.num_layers = PaperNumLayers(cnn);
  setup.data = FoodsDataStats();
  setup.env.num_nodes = nodes;
  DrillDownConfig config;
  VISTA_ASSIGN_OR_RETURN(sim::SimResult r, RunDrillDown(setup, config));
  if (r.crashed()) return Status::ResourceExhausted(r.status.message());
  Breakdown out;
  out.total_seconds = r.total_seconds;
  for (const auto& stage : r.stages) {
    if (stage.name.rfind("read:images", 0) == 0) {
      out.read_images_seconds += stage.seconds;
    } else if (stage.name.rfind("inference:", 0) == 0 ||
               stage.name.rfind("train:", 0) == 0) {
      out.per_layer_seconds[stage.name.substr(stage.name.find(':') + 1)] +=
          stage.seconds;
    }
  }
  return out;
}

void Table3(dl::KnownCnn cnn) {
  std::printf("\n%s/%dL: per-layer time (CNN inference + downstream "
              "training), minutes:\n",
              dl::KnownCnnToString(cnn), PaperNumLayers(cnn));
  std::map<int, Breakdown> runs;
  for (int nodes : {1, 2, 4, 8}) {
    auto r = Run(cnn, nodes);
    if (!r.ok()) {
      std::printf("  error at %d nodes: %s\n", nodes,
                  r.status().ToString().c_str());
      return;
    }
    runs[nodes] = *r;
  }
  std::printf("%-12s", "layer");
  for (int nodes : {1, 2, 4, 8}) std::printf(" | %5d node%s", nodes,
                                             nodes == 1 ? " " : "s");
  std::printf("\n");
  for (const auto& [layer, seconds] : runs[1].per_layer_seconds) {
    (void)seconds;
    std::printf("%-12s", layer.c_str());
    for (int nodes : {1, 2, 4, 8}) {
      std::printf(" | %10.1f", runs[nodes].per_layer_seconds[layer] / 60.0);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "total");
  for (int nodes : {1, 2, 4, 8}) {
    std::printf(" | %10.1f", runs[nodes].total_seconds / 60.0);
  }
  std::printf("\n%-12s", "read images");
  for (int nodes : {1, 2, 4, 8}) {
    std::printf(" | %10.1f", runs[nodes].read_images_seconds / 60.0);
  }
  std::printf("\n");

  // Figure 17: component speedups at 8 nodes.
  double compute1 = 0, compute8 = 0;
  for (const auto& [layer, seconds] : runs[1].per_layer_seconds) {
    compute1 += seconds;
    compute8 += runs[8].per_layer_seconds[layer];
  }
  std::printf("Fig 17 speedups @8 nodes: inference+train %.1fx, "
              "read images %.1fx\n",
              compute1 / compute8,
              runs[1].read_images_seconds / runs[8].read_images_seconds);
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Table 3 + Figure 17 (Appendix C)",
                "Per-layer runtime breakdown and component speedups "
                "(Foods, Staged/AJ)");
  for (auto cnn : {dl::KnownCnn::kResNet50, dl::KnownCnn::kAlexNet,
                   dl::KnownCnn::kVgg16}) {
    Table3(cnn);
  }
  return 0;
}
