// Ablation study: decomposes Vista's end-to-end gain into its three
// decision dimensions (Section 4.2) by knocking each out in turn:
//   A. logical plan    — replace Staged with Lazy/Eager under Vista's
//                        system configuration;
//   B. system config   — run Vista's Staged plan under the naive default
//                        configuration;
//   C. physical choices — force the non-chosen persistence format and join
//                        operator under otherwise-Vista settings.
// Also sweeps the serialized-format benefit against feature density (the
// sparsity lever behind Appendix A).

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

Result<sim::SimResult> VistaWith(const ExperimentSetup& setup,
                                 LogicalPlan plan,
                                 const df::JoinStrategy* join_override,
                                 const df::PersistenceFormat* pers_override) {
  Vista::Options options;
  options.cnn = setup.cnn;
  options.num_layers = setup.num_layers;
  options.data = setup.data;
  options.env = setup.env;
  VISTA_ASSIGN_OR_RETURN(Vista vista, Vista::Create(options));
  OptimizerDecisions d = vista.decisions();
  if (join_override != nullptr) d.join = *join_override;
  if (pers_override != nullptr) d.persistence = *pers_override;
  SystemProfile profile =
      VistaProfile(setup.env, setup.pd, d, options.optimizer);
  VISTA_ASSIGN_OR_RETURN(CompiledPlan compiled,
                         CompilePlan(plan, vista.workload()));
  SimExecutorConfig config;
  config.env = setup.env;
  config.node = setup.node;
  config.profile = profile;
  SimExecutor executor(&vista.entry());
  return executor.Execute(compiled, vista.workload(), setup.data, config);
}

void DecomposeGains(const char* label, const ExperimentSetup& setup) {
  std::printf("\n%s:\n", label);
  auto report = [&](const char* what, Result<sim::SimResult> r) {
    if (!r.ok()) {
      std::printf("  %-34s error: %s\n", what, r.status().ToString().c_str());
      return;
    }
    std::printf("  %-34s %s\n", what, bench::Outcome(*r).c_str());
  };
  report("Vista (all decisions)",
         VistaWith(setup, LogicalPlan::kStaged, nullptr, nullptr));
  report("  - staged plan (Lazy instead)",
         VistaWith(setup, LogicalPlan::kLazy, nullptr, nullptr));
  report("  - staged plan (Eager instead)",
         VistaWith(setup, LogicalPlan::kEager, nullptr, nullptr));
  // Knock out the auto-configuration: Staged on naive defaults.
  {
    auto resolved = Roster::Default();
    auto entry = resolved->Lookup(setup.cnn).value();
    auto workload = TransferWorkload::TopLayers(*resolved, setup.cnn,
                                                setup.num_layers)
                        .value();
    auto plan = CompilePlan(LogicalPlan::kStaged, workload).value();
    SimExecutorConfig config;
    config.env = setup.env;
    config.node = setup.node;
    config.profile =
        SparkDefaultProfile(setup.env, 7, setup.data.num_records);
    SimExecutor executor(entry);
    report("  - auto config (Spark defaults)",
           executor.Execute(plan, workload, setup.data, config));
  }
  const df::PersistenceFormat deser = df::PersistenceFormat::kDeserialized;
  const df::PersistenceFormat ser = df::PersistenceFormat::kSerialized;
  report("  - serialized (force deser.)",
         VistaWith(setup, LogicalPlan::kStaged, nullptr, &deser));
  report("  + serialized (force ser.)",
         VistaWith(setup, LogicalPlan::kStaged, nullptr, &ser));
  const df::JoinStrategy shuffle = df::JoinStrategy::kShuffleHash;
  report("  - join choice (force shuffle)",
         VistaWith(setup, LogicalPlan::kStaged, &shuffle, nullptr));
}

void DensitySweep() {
  std::printf("\nSerialized-format benefit vs feature density "
              "(Amazon/ResNet50, forced serialized):\n");
  std::printf("%-10s | %-12s | %-14s\n", "density", "runtime",
              "spills written");
  for (double density : {0.13, 0.25, 0.36, 0.5, 0.75, 1.0}) {
    ExperimentSetup setup;
    setup.cnn = dl::KnownCnn::kResNet50;
    setup.num_layers = 5;
    setup.data = AmazonDataStats();
    setup.data.feature_density = density;
    const df::PersistenceFormat ser = df::PersistenceFormat::kSerialized;
    auto r = VistaWith(setup, LogicalPlan::kStaged, nullptr, &ser);
    if (!r.ok()) {
      std::printf("%-10.2f | error\n", density);
      continue;
    }
    std::printf("%-10.2f | %-12s | %-14s\n", density,
                bench::Outcome(*r).c_str(),
                FormatBytes(r->spill_bytes_written).c_str());
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Ablation", "Decomposing Vista's decisions (DESIGN.md §5)");

  ExperimentSetup foods;
  foods.cnn = dl::KnownCnn::kResNet50;
  foods.num_layers = 5;
  foods.data = FoodsDataStats();
  DecomposeGains("Foods/ResNet50 (intermediates fit in memory)", foods);

  ExperimentSetup amazon = foods;
  amazon.data = AmazonDataStats();
  DecomposeGains("Amazon/ResNet50 (intermediates exceed memory)", amazon);

  DensitySweep();
  return 0;
}
