#ifndef VISTA_BENCH_BENCH_UTIL_H_
#define VISTA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/bytes.h"
#include "sim/cluster.h"

namespace vista::bench {

/// Prints a figure/table banner with the paper reference.
inline void Banner(const char* experiment_id, const char* description) {
  std::printf("\n");
  std::printf(
      "==============================================================="
      "=========\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf(
      "==============================================================="
      "=========\n");
}

/// Renders a sim outcome as the paper renders it: minutes, or an "x" crash
/// marker with the crash scenario.
inline std::string Outcome(const sim::SimResult& result,
                           double extra_seconds = 0) {
  if (result.crashed()) {
    return std::string("x (") + sim::CrashScenarioToString(result.crash) +
           ")";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f min",
                (result.total_seconds + extra_seconds) / 60.0);
  return buf;
}

}  // namespace vista::bench

#endif  // VISTA_BENCH_BENCH_UTIL_H_
