#ifndef VISTA_BENCH_BENCH_UTIL_H_
#define VISTA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "obs/export.h"
#include "obs/json.h"
#include "sim/cluster.h"
#include "vista/sim_executor.h"

namespace vista::bench {

/// Prints a figure/table banner with the paper reference.
inline void Banner(const char* experiment_id, const char* description) {
  std::printf("\n");
  std::printf(
      "==============================================================="
      "=========\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf(
      "==============================================================="
      "=========\n");
}

/// Renders a sim outcome as the paper renders it: minutes, or an "x" crash
/// marker with the crash scenario.
inline std::string Outcome(const sim::SimResult& result,
                           double extra_seconds = 0) {
  if (result.crashed()) {
    return std::string("x (") + sim::CrashScenarioToString(result.crash) +
           ")";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f min",
                (result.total_seconds + extra_seconds) / 60.0);
  return buf;
}

/// True if `flag` (e.g. "--smoke") appears in argv.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of "--flag value" or "--flag=value"; `def` when absent.
inline std::string FlagValue(int argc, char** argv, const char* flag,
                             std::string def) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return argv[i] + flag_len + 1;
    }
  }
  return def;
}

/// Accumulates bench run outcomes and writes one machine-readable JSON
/// report, replacing per-bench ad-hoc timing/printing code. Stage timings
/// flow through the obs span aggregation so sim benches and real-executor
/// runs produce the same report shape.
class BenchReporter {
 public:
  BenchReporter(std::string bench_id, std::string description)
      : bench_id_(std::move(bench_id)),
        description_(std::move(description)) {}

  /// Records one simulated run under `label` (e.g. "AlexNet/2L@1nodes").
  void AddSimRun(const std::string& label, const sim::SimResult& result) {
    obs::Json entry = obs::Json::Object();
    entry.Set("crashed", obs::Json::Bool(result.crashed()));
    if (result.crashed()) {
      entry.Set("crash",
                obs::Json::Str(sim::CrashScenarioToString(result.crash)));
      entry.Set("crashed_stage", obs::Json::Str(result.crashed_stage));
    }
    entry.Set("total_seconds", obs::Json::Num(result.total_seconds));
    entry.Set("spill_bytes_written",
              obs::Json::Int(result.spill_bytes_written));
    entry.Set("spill_bytes_read", obs::Json::Int(result.spill_bytes_read));
    obs::Json stages = obs::Json::Object();
    const std::vector<obs::Span> spans = SimResultSpans(result);
    for (const auto& [name, seconds] :
         obs::AggregateSpanSeconds(spans, "stage")) {
      stages.Set(name, obs::Json::Num(seconds));
    }
    entry.Set("stage_seconds", std::move(stages));
    runs_.Set(label, std::move(entry));
    ++num_runs_;
  }

  /// Records a failed configuration so the report stays complete.
  void AddError(const std::string& label, const Status& status) {
    obs::Json entry = obs::Json::Object();
    entry.Set("error", obs::Json::Str(status.ToString()));
    runs_.Set(label, std::move(entry));
    ++num_runs_;
  }

  /// Attaches an arbitrary extra section (e.g. an exported profile).
  void AddSection(const std::string& key, obs::Json value) {
    extras_.Set(key, std::move(value));
    has_extras_ = true;
  }

  int num_runs() const { return num_runs_; }

  /// Writes {bench, description, runs, ...extras} to `path`.
  Status Write(const std::string& path) const {
    obs::Json out = obs::Json::Object();
    out.Set("bench", obs::Json::Str(bench_id_));
    out.Set("description", obs::Json::Str(description_));
    out.Set("runs", runs_);
    if (has_extras_) out.Set("extras", extras_);
    VISTA_RETURN_IF_ERROR(obs::WriteTextFile(path, out.Dump(2) + "\n"));
    std::printf("wrote %s (%d runs)\n", path.c_str(), num_runs_);
    return Status::OK();
  }

 private:
  std::string bench_id_;
  std::string description_;
  obs::Json runs_ = obs::Json::Object();
  obs::Json extras_ = obs::Json::Object();
  bool has_extras_ = false;
  int num_runs_ = 0;
};

}  // namespace vista::bench

#endif  // VISTA_BENCH_BENCH_UTIL_H_
