// Regenerates Figure 12: (A) scaleup — nodes and data grow together;
// (B) speedup — fixed data, growing nodes; (C) single-node speedup vs cpu
// on 0.25X data. Paper shape: near-linear scaleup for all CNNs; near-
// linear speedup for VGG16/ResNet50 but markedly sub-linear for AlexNet
// (HDFS small-files reads dominate its small compute); single-node cpu
// speedup plateaus around 4 cores because the DL system uses all cores
// regardless.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

const dl::KnownCnn kCnns[] = {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                              dl::KnownCnn::kResNet50};

Result<double> Seconds(dl::KnownCnn cnn, int nodes, double scale, int cpu) {
  ExperimentSetup setup;
  setup.cnn = cnn;
  setup.num_layers = PaperNumLayers(cnn);
  setup.data = FoodsDataStats(scale);
  setup.env.num_nodes = nodes;
  DrillDownConfig config;
  config.cpu = cpu;
  VISTA_ASSIGN_OR_RETURN(sim::SimResult r, RunDrillDown(setup, config));
  if (r.crashed()) return Status::ResourceExhausted(r.status.message());
  return r.total_seconds;
}

void Scaleup() {
  std::printf("\n(A) Scaleup (nodes = scale factor; 1.0 = flat/ideal):\n");
  std::printf("%-8s", "factor");
  for (auto cnn : kCnns) std::printf(" | %-9s", dl::KnownCnnToString(cnn));
  std::printf("\n");
  for (int f : {1, 2, 4, 8}) {
    std::printf("%-8d", f);
    for (auto cnn : kCnns) {
      auto base = Seconds(cnn, 1, 1.0, 4);
      auto scaled = Seconds(cnn, f, f, 4);
      if (!base.ok() || !scaled.ok()) {
        std::printf(" | %-9s", "error");
        continue;
      }
      std::printf(" | %-9.2f", *scaled / *base);
    }
    std::printf("\n");
  }
}

void Speedup() {
  std::printf("\n(B) Speedup (fixed 1X data):\n");
  std::printf("%-8s", "nodes");
  for (auto cnn : kCnns) std::printf(" | %-9s", dl::KnownCnnToString(cnn));
  std::printf("\n");
  for (int nodes : {1, 2, 4, 8}) {
    std::printf("%-8d", nodes);
    for (auto cnn : kCnns) {
      auto base = Seconds(cnn, 1, 1.0, 4);
      auto scaled = Seconds(cnn, nodes, 1.0, 4);
      if (!base.ok() || !scaled.ok()) {
        std::printf(" | %-9s", "error");
        continue;
      }
      std::printf(" | %-9.2f", *base / *scaled);
    }
    std::printf("\n");
  }
}

void SingleNodeCpuSpeedup() {
  std::printf("\n(C) Single-node speedup vs cpu (0.25X data):\n");
  std::printf("%-8s", "cpus");
  for (auto cnn : kCnns) std::printf(" | %-9s", dl::KnownCnnToString(cnn));
  std::printf("\n");
  for (int cpu : {1, 2, 3, 4, 5, 6, 7, 8}) {
    std::printf("%-8d", cpu);
    for (auto cnn : kCnns) {
      auto base = Seconds(cnn, 1, 0.25, 1);
      auto scaled = Seconds(cnn, 1, 0.25, cpu);
      if (!base.ok() || !scaled.ok()) {
        std::printf(" | %-9s", "error");
        continue;
      }
      std::printf(" | %-9.2f", *base / *scaled);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 12",
                "Scaleup, speedup, and single-node cpu speedup (Foods, "
                "Staged/AJ/Shuffle/Deser.)");
  Scaleup();
  Speedup();
  SingleNodeCpuSpeedup();
  return 0;
}
