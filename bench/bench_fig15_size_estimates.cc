// Regenerates Figure 15 (Appendix A): estimated versus actual sizes of the
// largest intermediate table, for all-at-a-time (Eager) and Staged
// materialization. Two parts:
//   1. Full-size estimates for the paper's three CNNs on Foods, from the
//      size estimator (Eq. 16) — the numbers the optimizer plans with.
//   2. A real validation: micro CNNs over a generated dataset, comparing
//      the estimator against actually materialized partitions in both
//      deserialized and serialized formats. The paper's claim under test:
//      estimates are accurate for deserialized data, with a safety margin
//      (estimate >= actual), and serialized data is smaller because CNN
//      features post-ReLU are sparse.

#include <cstdio>

#include "bench/bench_util.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/experiments.h"

namespace vista {
namespace {

void FullSizeEstimates() {
  std::printf("\nFull-size estimates (Foods, alpha = 2):\n");
  std::printf("%-10s | %-12s | %-14s | %-14s\n", "CNN", "Staged peak",
              "Eager (AaT)", "Eager ser.");
  auto roster = Roster::Default().value();
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    const RosterEntry* entry = roster.Lookup(cnn).value();
    auto workload =
        TransferWorkload::TopLayers(roster, cnn, PaperNumLayers(cnn))
            .value();
    auto est = EstimateSizes(*entry, workload, FoodsDataStats()).value();
    int64_t eager_ser = 0;
    for (int64_t b : est.t_i_serialized_bytes) eager_ser += b;
    eager_ser -= static_cast<int64_t>(est.t_i_serialized_bytes.size() - 1) *
                 est.t_str_bytes;
    std::printf("%-10s | %-12s | %-14s | %-14s\n",
                dl::KnownCnnToString(cnn),
                FormatBytes(est.s_single).c_str(),
                FormatBytes(est.eager_table_bytes).c_str(),
                FormatBytes(eager_ser).c_str());
  }
}

Status RealValidation() {
  std::printf(
      "\nReal validation (MicroAlexNet, 800 records, 3 layers):\n");
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  df::Engine engine(engine_config);

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  VISTA_ASSIGN_OR_RETURN(
      dl::CnnModel model,
      dl::CnnModel::Instantiate(*arch, 3, dl::WeightInit::kGaborFirstConv));

  feat::MultimodalDatasetSpec spec;
  spec.num_records = 800;
  spec.num_struct_features = 16;
  spec.image_size = 32;
  VISTA_ASSIGN_OR_RETURN(feat::MultimodalDataset data,
                         feat::GenerateMultimodal(spec));
  VISTA_ASSIGN_OR_RETURN(df::Table t_str,
                         engine.MakeTable(std::move(data.t_str), 8));
  VISTA_ASSIGN_OR_RETURN(df::Table t_img,
                         engine.MakeTable(std::move(data.t_img), 8));

  // Build an estimator view of the micro model.
  RosterEntry entry;
  entry.cnn = dl::KnownCnn::kAlexNet;
  entry.arch = *arch;
  TransferWorkload workload;
  workload.cnn = dl::KnownCnn::kAlexNet;
  VISTA_ASSIGN_OR_RETURN(workload.layers, arch->TopLayers(3));
  DataStats stats;
  stats.num_records = spec.num_records;
  stats.num_struct_features = spec.num_struct_features + 1;
  VISTA_ASSIGN_OR_RETURN(SizeEstimates est,
                         EstimateSizes(entry, workload, stats));

  // Materialize each T_i for real (inference + join) and measure.
  RealExecutor executor(&engine, &model);
  RealExecutorConfig config;
  config.num_partitions = 8;
  double worst_margin = 10.0;
  for (size_t i = 0; i < workload.layers.size(); ++i) {
    PlanStep step;
    step.kind = PlanStep::Kind::kInference;
    step.source_slot = -1;
    step.source_layer = -1;
    step.produce_layers = {workload.layers[i]};
    TransferWorkload one_layer = workload;
    one_layer.layers = {workload.layers[i]};
    VISTA_ASSIGN_OR_RETURN(
        df::Table features,
        executor.PreMaterializeBase(one_layer, t_img, config));
    VISTA_ASSIGN_OR_RETURN(
        df::Table ti,
        engine.Join(t_str, features, df::JoinStrategy::kShuffleHash, 8));
    int64_t actual_deser = 0, actual_ser = 0;
    for (auto& p : ti.partitions) {
      actual_deser += p->memory_bytes_as(df::PersistenceFormat::kDeserialized);
      actual_ser += p->memory_bytes_as(df::PersistenceFormat::kSerialized);
    }
    const double margin =
        static_cast<double>(est.t_i_bytes[i]) / actual_deser;
    worst_margin = std::min(worst_margin, margin);
    std::printf(
        "  %-8s estimate %-10s actual deser. %-10s ser. %-10s "
        "(margin %.2fx)\n",
        arch->layer(workload.layers[i]).name.c_str(),
        FormatBytes(est.t_i_bytes[i]).c_str(),
        FormatBytes(actual_deser).c_str(), FormatBytes(actual_ser).c_str(),
        margin);
    if (actual_ser >= actual_deser) {
      std::printf("  WARNING: serialized not smaller for this layer\n");
    }
  }
  std::printf("  safety check (estimate >= actual deserialized): %s\n",
              worst_margin >= 1.0 ? "HOLDS" : "VIOLATED");
  return Status::OK();
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 15 (Appendix A)",
                "Estimated vs actual intermediate table sizes");
  std::printf(
      "Paper: estimates are accurate for deserialized data with a\n"
      "reasonable safety margin; serialized is smaller (features are\n"
      "sparse: AlexNet ~13%% nonzero, VGG/ResNet ~36%%).\n");
  FullSizeEstimates();
  Status status = RealValidation();
  if (!status.ok()) {
    std::printf("FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
