// Serving-plane bench: the multi-tenant feature-transfer service with
// cross-query view reuse against the same queries served cold.
//
// Sections in the JSON report ("extras"):
//   cross_query   one tenant runs a transfer query cold (base layer
//                 materialized from raw images), a second tenant then runs
//                 the identical query: the view cache supplies the base
//                 layer, so the second query executes strictly fewer CNN
//                 FLOPs and finishes faster. flops_ratio (cold/warm) is
//                 exact and machine-independent — the regression gate
//                 tracks it.
//   throughput    after a warming query, several client threads submit
//                 overlapping queries from distinct tenants. Reports
//                 queries/sec, the (deterministic, cache warmed) hit rate,
//                 and the service's p50/p99 end-to-end latencies.
//   admission     a one-worker service with a tiny queue is saturated while
//                 its worker is parked; the shed/served split shows
//                 backpressure engaging instead of unbounded queueing.
//
// The regression gate tracks cross_query.flops_ratio and
// throughput.cache_hit_rate; latencies and qps are machine-dependent and
// informational.

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "serve/service.h"

namespace vista::bench {
namespace {

struct Deployment {
  std::unique_ptr<df::Engine> engine;
  std::unique_ptr<dl::CnnModel> model;
  df::Table t_str;
  df::Table t_img;
  TransferWorkload workload;
  std::unique_ptr<serve::FeatureTransferService> service;
};

Result<Deployment> MakeDeployment(int num_records, int num_workers) {
  Deployment d;
  df::EngineConfig ec;
  ec.cpus_per_worker = 4;
  d.engine = std::make_unique<df::Engine>(ec);
  VISTA_ASSIGN_OR_RETURN(dl::CnnArchitecture arch,
                         dl::BuildMicroArch(dl::KnownCnn::kAlexNet));
  VISTA_ASSIGN_OR_RETURN(
      dl::CnnModel model,
      dl::CnnModel::Instantiate(arch, 21, dl::WeightInit::kGaborFirstConv));
  d.model = std::make_unique<dl::CnnModel>(std::move(model));

  feat::MultimodalDatasetSpec spec;
  spec.num_records = num_records;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  spec.seed = 5;
  VISTA_ASSIGN_OR_RETURN(feat::MultimodalDataset data,
                         feat::GenerateMultimodal(spec));
  VISTA_ASSIGN_OR_RETURN(d.t_str,
                         d.engine->MakeTable(std::move(data.t_str), 6));
  VISTA_ASSIGN_OR_RETURN(d.t_img,
                         d.engine->MakeTable(std::move(data.t_img), 6));

  d.workload.cnn = dl::KnownCnn::kAlexNet;
  VISTA_ASSIGN_OR_RETURN(d.workload.layers, arch.TopLayers(3));
  d.workload.model = DownstreamModel::kLogisticRegression;
  d.workload.training_iterations = 5;

  serve::ServiceConfig config;
  config.num_workers = num_workers;
  config.executor.num_partitions = 6;
  config.executor.lr.iterations = 5;
  VISTA_ASSIGN_OR_RETURN(
      d.service, serve::FeatureTransferService::Create(d.engine.get(), config));
  VISTA_RETURN_IF_ERROR(d.service->RegisterModel("alexnet", d.model.get()));
  VISTA_RETURN_IF_ERROR(
      d.service->RegisterDataset("foods", d.t_str, d.t_img));
  return d;
}

serve::ServeRequest RequestFor(const Deployment& d,
                               const std::string& tenant) {
  serve::ServeRequest req;
  req.tenant = tenant;
  req.model = "alexnet";
  req.dataset = "foods";
  req.workload = d.workload;
  return req;
}

int Main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const std::string out =
      FlagValue(argc, argv, "--out",
                smoke ? "BENCH_smoke_service.json" : "BENCH_service.json");
  Banner("service", "multi-tenant serving with cross-query feature reuse");
  BenchReporter reporter(
      "service",
      "feature-transfer service: cross-query view reuse, multi-tenant "
      "throughput, and admission-control backpressure");

  const int num_records = smoke ? 200 : 600;
  const int clients = 4;
  const int queries_per_client = smoke ? 2 : 4;

  auto deployment = MakeDeployment(num_records, /*num_workers=*/3);
  if (!deployment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = *deployment;

  // --- Cross-query reuse: identical query cold, then warm.
  {
    Stopwatch cold_watch;
    auto cold = d.service->Execute(RequestFor(d, "tenant_cold"));
    const double cold_ms = cold_watch.ElapsedSeconds() * 1e3;
    if (!cold.ok()) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   cold.status().ToString().c_str());
      return 1;
    }
    Stopwatch warm_watch;
    auto warm = d.service->Execute(RequestFor(d, "tenant_warm"));
    const double warm_ms = warm_watch.ElapsedSeconds() * 1e3;
    if (!warm.ok()) {
      std::fprintf(stderr, "warm query failed: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
    if (cold->cache_hit || !warm->cache_hit ||
        warm->inference_flops >= cold->inference_flops) {
      std::fprintf(stderr,
                   "cross-query reuse did not engage (hit %d/%d, flops "
                   "%lld/%lld)\n",
                   cold->cache_hit, warm->cache_hit,
                   static_cast<long long>(cold->inference_flops),
                   static_cast<long long>(warm->inference_flops));
      return 1;
    }
    const double flops_ratio =
        static_cast<double>(cold->inference_flops) /
        static_cast<double>(warm->inference_flops);
    std::printf(
        "cross-query: cold %.1f ms / %lld FLOPs, warm %.1f ms / %lld FLOPs "
        "(%.2fx FLOPs, %.2fx latency)\n",
        cold_ms, static_cast<long long>(cold->inference_flops), warm_ms,
        static_cast<long long>(warm->inference_flops), flops_ratio,
        cold_ms / warm_ms);
    obs::Json section = obs::Json::Object();
    section.Set("records", obs::Json::Int(num_records));
    section.Set("cold_ms", obs::Json::Num(cold_ms));
    section.Set("warm_ms", obs::Json::Num(warm_ms));
    section.Set("latency_speedup", obs::Json::Num(cold_ms / warm_ms));
    section.Set("cold_flops", obs::Json::Int(cold->inference_flops));
    section.Set("warm_flops", obs::Json::Int(warm->inference_flops));
    section.Set("flops_ratio", obs::Json::Num(flops_ratio));
    section.Set("resumed_from_layer",
                obs::Json::Int(warm->resumed_from_layer));
    reporter.AddSection("cross_query", std::move(section));
  }

  // --- Multi-tenant throughput over the warmed cache.
  {
    const int total = clients * queries_per_client;
    std::atomic<int> hits{0};
    std::atomic<int> failures{0};
    Stopwatch watch;
    std::vector<std::future<void>> futures;
    for (int c = 0; c < clients; ++c) {
      futures.push_back(std::async(std::launch::async, [&, c] {
        for (int q = 0; q < queries_per_client; ++q) {
          auto result = d.service->Execute(
              RequestFor(d, "tenant_" + std::to_string(c)));
          if (!result.ok()) {
            ++failures;
          } else if (result->cache_hit) {
            ++hits;
          }
        }
      }));
    }
    for (auto& f : futures) f.get();
    const double wall_seconds = watch.ElapsedSeconds();
    if (failures.load() != 0) {
      std::fprintf(stderr, "%d concurrent queries failed\n", failures.load());
      return 1;
    }
    const serve::ServiceStats stats = d.service->stats();
    const double qps = total / wall_seconds;
    const double hit_rate = static_cast<double>(hits.load()) / total;
    std::printf(
        "throughput: %d queries from %d tenants in %.2f s (%.2f q/s), hit "
        "rate %.2f, p50 %.1f ms, p99 %.1f ms\n",
        total, clients, wall_seconds, qps, hit_rate, stats.p50_latency_ms,
        stats.p99_latency_ms);
    obs::Json section = obs::Json::Object();
    section.Set("queries", obs::Json::Int(total));
    section.Set("clients", obs::Json::Int(clients));
    section.Set("wall_seconds", obs::Json::Num(wall_seconds));
    section.Set("qps", obs::Json::Num(qps));
    section.Set("cache_hit_rate", obs::Json::Num(hit_rate));
    section.Set("p50_ms", obs::Json::Num(stats.p50_latency_ms));
    section.Set("p99_ms", obs::Json::Num(stats.p99_latency_ms));
    section.Set("view_cache_resident_bytes",
                obs::Json::Int(stats.view_cache_resident_bytes));
    reporter.AddSection("throughput", std::move(section));
  }

  // --- Admission control under saturation (fresh deployment so its
  // counters start from zero). The single worker is parked inside a
  // completion callback while a burst arrives against a depth-2 queue.
  {
    auto burst_deployment = MakeDeployment(smoke ? 60 : 120,
                                           /*num_workers=*/1);
    if (!burst_deployment.ok()) {
      std::fprintf(stderr, "admission setup failed: %s\n",
                   burst_deployment.status().ToString().c_str());
      return 1;
    }
    Deployment& b = *burst_deployment;
    // Rebuild the service with a tiny queue.
    serve::ServiceConfig config;
    config.num_workers = 1;
    config.max_queue_depth = 2;
    config.max_queued_per_tenant = 1;
    config.executor.num_partitions = 6;
    config.executor.train_models = false;
    b.service->Shutdown();
    auto tight =
        serve::FeatureTransferService::Create(b.engine.get(), config);
    if (!tight.ok()) {
      std::fprintf(stderr, "admission service failed: %s\n",
                   tight.status().ToString().c_str());
      return 1;
    }
    (void)(*tight)->RegisterModel("alexnet", b.model.get());
    (void)(*tight)->RegisterDataset("foods", b.t_str, b.t_img);

    std::promise<void> entered;
    std::promise<void> release;
    std::shared_future<void> release_future(release.get_future());
    serve::ServeRequest blocker = RequestFor(b, "blocker");
    blocker.train_models = false;
    Status submitted = (*tight)->Submit(
        blocker, [&entered, release_future](const serve::ServeResult&) {
          entered.set_value();
          release_future.wait();
        });
    if (!submitted.ok()) {
      std::fprintf(stderr, "blocker submit failed\n");
      return 1;
    }
    entered.get_future().wait();

    const int burst = 8;
    int accepted = 0, shed = 0;
    for (int i = 0; i < burst; ++i) {
      serve::ServeRequest req = RequestFor(b, "tenant_" + std::to_string(i));
      req.train_models = false;
      auto ticket = (*tight)->Submit(req);
      if (ticket.ok()) {
        ++accepted;
      } else {
        ++shed;
      }
    }
    release.set_value();
    (*tight)->Drain();
    const serve::ServiceStats stats = (*tight)->stats();
    std::printf(
        "admission: burst of %d against depth-2 queue -> %d accepted, %d "
        "shed; %lld completed, %lld rejects counted\n",
        burst, accepted, shed,
        static_cast<long long>(stats.queries_completed),
        static_cast<long long>(stats.admission_rejects));
    obs::Json section = obs::Json::Object();
    section.Set("burst", obs::Json::Int(burst));
    section.Set("accepted", obs::Json::Int(accepted));
    section.Set("shed", obs::Json::Int(shed));
    section.Set("completed", obs::Json::Int(stats.queries_completed));
    section.Set("rejects", obs::Json::Int(stats.admission_rejects));
    reporter.AddSection("admission", std::move(section));
    if (shed == 0 || stats.queries_failed != 0) {
      std::fprintf(stderr, "backpressure did not engage\n");
      return 1;
    }
  }

  Status st = reporter.Write(out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace vista::bench

int main(int argc, char** argv) { return vista::bench::Main(argc, argv); }
