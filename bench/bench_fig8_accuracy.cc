// Regenerates Figure 8: downstream test F1 with (1) structured features
// only, (2) structured + HOG image features, (3) structured + CNN features
// from each explored layer. Runs for real: micro CNNs (Gabor-initialized
// first conv, DESIGN.md substitution for pretrained weights) over synthetic
// Foods/Amazon samples, elastic-net logistic regression (alpha = 0.5,
// lambda = 0.01, 10 iterations), 20% held-out test split.
//
// Paper shape: adding image features helps; CNN features lift F1 clearly
// more than HOG; the best layer is not the topmost one. Also reports the
// paper's Section 5.2 decision-tree observation: tree accuracy does not
// improve materially with CNN features.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "features/hog.h"
#include "features/synthetic.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct Dataset {
  std::string name;
  df::Table t_str;
  df::Table t_img;
};

Result<Dataset> MakeDataset(df::Engine* engine, const std::string& name,
                            uint64_t seed) {
  feat::MultimodalDatasetSpec spec;
  spec.name = name;
  spec.num_records = 2400;
  spec.num_struct_features = name == "Foods" ? 24 : 32;
  spec.num_informative_struct = 6;
  spec.image_size = 32;
  spec.struct_signal = 0.45;
  spec.image_signal = 1.0;
  spec.seed = seed;
  VISTA_ASSIGN_OR_RETURN(feat::MultimodalDataset data,
                         feat::GenerateMultimodal(spec));
  Dataset out;
  out.name = name;
  VISTA_ASSIGN_OR_RETURN(out.t_str,
                         engine->MakeTable(std::move(data.t_str), 8));
  VISTA_ASSIGN_OR_RETURN(out.t_img,
                         engine->MakeTable(std::move(data.t_img), 8));
  return out;
}

ml::LogisticRegressionConfig PaperLrConfig() {
  ml::LogisticRegressionConfig lr;
  lr.iterations = 30;
  lr.learning_rate = 0.3;
  lr.reg_lambda = 0.01;
  lr.elastic_net_alpha = 0.5;
  return lr;
}

/// Trains LR on [struct features (+ optional slot-0 tensor)] of `table`,
/// evaluating on the hash-based 20% test split. Returns test F1.
Result<double> TrainAndScore(df::Engine* engine, const df::Table& table,
                             int feature_slot) {
  const auto extractor = MakeTransferExtractor(feature_slot, 2);
  auto train = engine->MapPartitions(
      table, [](std::vector<df::Record> records)
                 -> Result<std::vector<df::Record>> {
        std::vector<df::Record> out;
        for (auto& r : records) {
          if (!feat::IsTestId(r.id, 0.2)) out.push_back(std::move(r));
        }
        return out;
      });
  VISTA_RETURN_IF_ERROR(train.status());
  VISTA_ASSIGN_OR_RETURN(
      ml::LogisticRegressionModel model,
      ml::TrainLogisticRegression(engine, *train, extractor,
                                  PaperLrConfig()));
  ml::BinaryMetrics metrics;
  VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> rows,
                         engine->Collect(table));
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    if (!feat::IsTestId(r.id, 0.2)) continue;
    VISTA_RETURN_IF_ERROR(extractor(r, &x, &label));
    metrics.Add(model.Predict(x.data()), label > 0.5f ? 1 : 0);
  }
  return metrics.F1();
}

Result<df::Table> HogTable(df::Engine* engine, const Dataset& data) {
  VISTA_ASSIGN_OR_RETURN(
      df::Table hog,
      engine->MapPartitions(
          data.t_img, [](std::vector<df::Record> records)
                          -> Result<std::vector<df::Record>> {
            std::vector<df::Record> out;
            for (const df::Record& r : records) {
              df::Record h;
              h.id = r.id;
              VISTA_ASSIGN_OR_RETURN(Tensor features,
                                     feat::HogFeatures(r.image()));
              h.features.Append(std::move(features));
              out.push_back(std::move(h));
            }
            return out;
          }));
  return engine->Join(data.t_str, hog, df::JoinStrategy::kShuffleHash, 8);
}

Result<int> RunPanel(df::Engine* engine, const Dataset& data,
                     dl::KnownCnn cnn, int num_layers) {
  VISTA_ASSIGN_OR_RETURN(dl::CnnArchitecture arch, dl::BuildMicroArch(cnn));
  VISTA_ASSIGN_OR_RETURN(
      dl::CnnModel model,
      dl::CnnModel::Instantiate(arch, 77, dl::WeightInit::kGaborFirstConv));

  std::printf("\n%s with Micro%s:\n", data.name.c_str(),
              dl::KnownCnnToString(cnn));
  VISTA_ASSIGN_OR_RETURN(double struct_f1,
                         TrainAndScore(engine, data.t_str, -1));
  std::printf("  %-18s F1 = %.1f%%\n", "struct", 100 * struct_f1);

  VISTA_ASSIGN_OR_RETURN(df::Table hog, HogTable(engine, data));
  VISTA_ASSIGN_OR_RETURN(double hog_f1, TrainAndScore(engine, hog, 0));
  std::printf("  %-18s F1 = %.1f%%\n", "struct + HOG", 100 * hog_f1);

  TransferWorkload workload;
  workload.cnn = cnn;
  VISTA_ASSIGN_OR_RETURN(workload.layers, arch.TopLayers(num_layers));
  workload.model = DownstreamModel::kLogisticRegression;
  workload.training_iterations = PaperLrConfig().iterations;
  VISTA_ASSIGN_OR_RETURN(CompiledPlan plan,
                         CompilePlan(LogicalPlan::kStaged, workload));
  RealExecutor executor(engine, &model);
  RealExecutorConfig config;
  config.num_partitions = 8;
  config.lr = PaperLrConfig();
  VISTA_ASSIGN_OR_RETURN(
      RealRunResult result,
      executor.Run(plan, workload, data.t_str, data.t_img, config));
  double best_cnn = 0;
  for (const auto& layer : result.per_layer) {
    std::printf("  %-18s F1 = %.1f%%\n",
                ("struct + " + layer.layer_name).c_str(),
                100 * layer.test_f1);
    best_cnn = std::max(best_cnn, layer.test_f1);
  }
  const bool shape_holds = best_cnn > hog_f1 && hog_f1 > struct_f1 - 0.01;
  std::printf("  shape check: struct <= struct+HOG < struct+CNN(best): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 1 : 0;
}

Result<double> TreeScore(df::Engine* engine, const Dataset& data,
                         const df::Table& table, int slot) {
  (void)data;
  const auto extractor = MakeTransferExtractor(slot, 2);
  auto train = engine->MapPartitions(
      table, [](std::vector<df::Record> records)
                 -> Result<std::vector<df::Record>> {
        std::vector<df::Record> out;
        for (auto& r : records) {
          if (!feat::IsTestId(r.id, 0.2)) out.push_back(std::move(r));
        }
        return out;
      });
  VISTA_RETURN_IF_ERROR(train.status());
  ml::DecisionTreeConfig tree_config;
  tree_config.max_depth = 5;
  VISTA_ASSIGN_OR_RETURN(
      ml::DecisionTreeModel tree,
      ml::TrainDecisionTree(engine, *train, extractor, tree_config));
  ml::BinaryMetrics metrics;
  VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> rows,
                         engine->Collect(table));
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    if (!feat::IsTestId(r.id, 0.2)) continue;
    VISTA_RETURN_IF_ERROR(extractor(r, &x, &label));
    metrics.Add(tree.Predict(x.data()), label > 0.5f ? 1 : 0);
  }
  return metrics.F1();
}

Status RunAll() {
  df::EngineConfig engine_config;
  engine_config.num_workers = 1;
  engine_config.cpus_per_worker = 8;
  df::Engine engine(engine_config);

  VISTA_ASSIGN_OR_RETURN(Dataset foods, MakeDataset(&engine, "Foods", 11));
  VISTA_ASSIGN_OR_RETURN(Dataset amazon,
                         MakeDataset(&engine, "Amazon-sample", 22));

  int holds = 0, panels = 0;
  for (const Dataset* data : {&foods, &amazon}) {
    for (auto cnn : {dl::KnownCnn::kResNet50, dl::KnownCnn::kAlexNet}) {
      VISTA_ASSIGN_OR_RETURN(
          int ok, RunPanel(&engine, *data, cnn,
                           cnn == dl::KnownCnn::kResNet50 ? 5 : 4));
      holds += ok;
      ++panels;
    }
  }

  // Section 5.2's decision-tree aside: a shallow tree gains little from
  // CNN features.
  VISTA_ASSIGN_OR_RETURN(double tree_struct,
                         TreeScore(&engine, foods, foods.t_str, -1));
  std::printf("\nDecision tree (Foods): struct-only F1 = %.1f%% — the "
              "paper similarly finds shallow trees do not benefit much "
              "from CNN features.\n",
              100 * tree_struct);

  std::printf("\nFigure 8 shape held in %d/%d panels.\n", holds, panels);
  return Status::OK();
}

}  // namespace
}  // namespace vista

int main() {
  vista::bench::Banner(
      "Figure 8",
      "Downstream F1: struct vs +HOG vs +CNN layers (real execution)");
  std::printf(
      "Paper: CNN features lift F1 by 3-5 points over struct-only and\n"
      "clearly beat HOG; the best layer is below the topmost. Substitution\n"
      "(DESIGN.md): micro CNNs with Gabor first-conv filters stand in for\n"
      "ImageNet-pretrained models; datasets are synthetic with class signal\n"
      "in both modalities.\n");
  vista::Status status = vista::RunAll();
  if (!status.ok()) {
    std::printf("FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
