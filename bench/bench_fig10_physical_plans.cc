// Regenerates Figure 10: physical plan choices — Shuffle vs Broadcast join
// and Serialized vs Deserialized persistence — varying data scale and the
// number of structured features, on the Staged/AJ logical plan. Paper
// shape: mostly indistinguishable at small scales; Serialized wins
// slightly once spills start (ResNet at 8X); Broadcast is marginally
// faster than Shuffle but crashes when the broadcast table grows (many
// structured features at 8X) — no single combination always dominates.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct PhysicalChoice {
  const char* label;
  df::JoinStrategy join;
  df::PersistenceFormat persistence;
};

const PhysicalChoice kChoices[] = {
    {"Shuffle/Deser.", df::JoinStrategy::kShuffleHash,
     df::PersistenceFormat::kDeserialized},
    {"Shuffle/Ser.", df::JoinStrategy::kShuffleHash,
     df::PersistenceFormat::kSerialized},
    {"Broad./Deser.", df::JoinStrategy::kBroadcast,
     df::PersistenceFormat::kDeserialized},
    {"Broad./Ser.", df::JoinStrategy::kBroadcast,
     df::PersistenceFormat::kSerialized},
};

void Run(const ExperimentSetup& base, const char* row_label) {
  std::printf("%-10s", row_label);
  for (const auto& choice : kChoices) {
    DrillDownConfig config;
    config.join = choice.join;
    config.persistence = choice.persistence;
    auto r = RunDrillDown(base, config);
    if (!r.ok()) {
      std::printf(" | %-14s", "error");
      continue;
    }
    std::printf(" | %-14s", bench::Outcome(*r).c_str());
  }
  std::printf("\n");
}

void Header() {
  std::printf("%-10s", "");
  for (const auto& choice : kChoices) std::printf(" | %-14s", choice.label);
  std::printf("\n");
}

void SweepScale(dl::KnownCnn cnn, int num_layers) {
  std::printf("\n(%s/%dL) runtime vs data scale:\n",
              dl::KnownCnnToString(cnn), num_layers);
  Header();
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    ExperimentSetup setup;
    setup.cnn = cnn;
    setup.num_layers = num_layers;
    setup.data = FoodsDataStats(scale);
    char label[16];
    std::snprintf(label, sizeof(label), "%gX", scale);
    Run(setup, label);
  }
}

void SweepStructFeatures(dl::KnownCnn cnn, int num_layers) {
  std::printf("\n(%s/%dL/8X) runtime vs #structured features:\n",
              dl::KnownCnnToString(cnn), num_layers);
  Header();
  for (int features : {10, 100, 1000, 10000}) {
    ExperimentSetup setup;
    setup.cnn = cnn;
    setup.num_layers = num_layers;
    setup.data = FoodsDataStats(8.0);
    setup.data.num_struct_features = features;
    char label[16];
    std::snprintf(label, sizeof(label), "%d", features);
    Run(setup, label);
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 10",
                "Physical plan choices (Foods drill-down, Staged/AJ, cpu=4, "
                "8 nodes)");
  SweepScale(dl::KnownCnn::kAlexNet, 4);
  SweepScale(dl::KnownCnn::kResNet50, 5);
  SweepStructFeatures(dl::KnownCnn::kAlexNet, 4);
  SweepStructFeatures(dl::KnownCnn::kResNet50, 5);
  return 0;
}
