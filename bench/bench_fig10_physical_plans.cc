// Regenerates Figure 10: physical plan choices — Shuffle vs Broadcast join
// and Serialized vs Deserialized persistence — varying data scale and the
// number of structured features, on the Staged/AJ logical plan. Paper
// shape: mostly indistinguishable at small scales; Serialized wins
// slightly once spills start (ResNet at 8X); Broadcast is marginally
// faster than Shuffle but crashes when the broadcast table grows (many
// structured features at 8X) — no single combination always dominates.
//
// `--smoke` shrinks the sweep (AlexNet/2L, scales 1-2X, 10/100 features)
// and writes a machine-readable report (default BENCH_smoke_fig10.json,
// override with `--out <path>`).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

struct PhysicalChoice {
  const char* label;
  df::JoinStrategy join;
  df::PersistenceFormat persistence;
};

const PhysicalChoice kChoices[] = {
    {"Shuffle/Deser.", df::JoinStrategy::kShuffleHash,
     df::PersistenceFormat::kDeserialized},
    {"Shuffle/Ser.", df::JoinStrategy::kShuffleHash,
     df::PersistenceFormat::kSerialized},
    {"Broad./Deser.", df::JoinStrategy::kBroadcast,
     df::PersistenceFormat::kDeserialized},
    {"Broad./Ser.", df::JoinStrategy::kBroadcast,
     df::PersistenceFormat::kSerialized},
};

/// Deterministic outcome tally across the whole sweep: the simulator's
/// crash decisions are pure functions of the setup, so these counts are
/// machine-independent and the regression gate can track them.
struct SweepTally {
  int completed = 0;
  int crashed = 0;
  int errors = 0;

  obs::Json ToJson() const {
    const int total = completed + crashed + errors;
    obs::Json summary = obs::Json::Object();
    summary.Set("configs", obs::Json::Int(total));
    summary.Set("completed", obs::Json::Int(completed));
    summary.Set("crashed", obs::Json::Int(crashed));
    summary.Set("errors", obs::Json::Int(errors));
    summary.Set("completed_fraction",
                obs::Json::Num(total == 0 ? 0.0
                                          : static_cast<double>(completed) /
                                                static_cast<double>(total)));
    return summary;
  }
};

void Run(const ExperimentSetup& base, const char* row_label,
         const std::string& sweep_label, bench::BenchReporter* reporter,
         SweepTally* tally) {
  std::printf("%-10s", row_label);
  for (const auto& choice : kChoices) {
    DrillDownConfig config;
    config.join = choice.join;
    config.persistence = choice.persistence;
    const std::string label =
        sweep_label + "/" + row_label + "/" + choice.label;
    auto r = RunDrillDown(base, config);
    if (!r.ok()) {
      std::printf(" | %-14s", "error");
      if (reporter != nullptr) reporter->AddError(label, r.status());
      ++tally->errors;
      continue;
    }
    if (reporter != nullptr) reporter->AddSimRun(label, *r);
    if (r->crashed()) {
      ++tally->crashed;
    } else {
      ++tally->completed;
    }
    std::printf(" | %-14s", bench::Outcome(*r).c_str());
  }
  std::printf("\n");
}

void Header() {
  std::printf("%-10s", "");
  for (const auto& choice : kChoices) std::printf(" | %-14s", choice.label);
  std::printf("\n");
}

void SweepScale(dl::KnownCnn cnn, int num_layers,
                const std::vector<double>& scales,
                bench::BenchReporter* reporter, SweepTally* tally) {
  std::printf("\n(%s/%dL) runtime vs data scale:\n",
              dl::KnownCnnToString(cnn), num_layers);
  const std::string sweep = std::string(dl::KnownCnnToString(cnn)) + "/" +
                            std::to_string(num_layers) + "L/scale";
  Header();
  for (double scale : scales) {
    ExperimentSetup setup;
    setup.cnn = cnn;
    setup.num_layers = num_layers;
    setup.data = FoodsDataStats(scale);
    char label[16];
    std::snprintf(label, sizeof(label), "%gX", scale);
    Run(setup, label, sweep, reporter, tally);
  }
}

void SweepStructFeatures(dl::KnownCnn cnn, int num_layers, double scale,
                         const std::vector<int>& feature_counts,
                         bench::BenchReporter* reporter, SweepTally* tally) {
  std::printf("\n(%s/%dL/%gX) runtime vs #structured features:\n",
              dl::KnownCnnToString(cnn), num_layers, scale);
  const std::string sweep = std::string(dl::KnownCnnToString(cnn)) + "/" +
                            std::to_string(num_layers) + "L/features";
  Header();
  for (int features : feature_counts) {
    ExperimentSetup setup;
    setup.cnn = cnn;
    setup.num_layers = num_layers;
    setup.data = FoodsDataStats(scale);
    setup.data.num_struct_features = features;
    char label[16];
    std::snprintf(label, sizeof(label), "%d", features);
    Run(setup, label, sweep, reporter, tally);
  }
}

}  // namespace
}  // namespace vista

int main(int argc, char** argv) {
  using namespace vista;
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  bench::Banner("Figure 10",
                "Physical plan choices (Foods drill-down, Staged/AJ, cpu=4, "
                "8 nodes)");
  bench::BenchReporter reporter(
      "fig10_physical_plans",
      smoke ? "smoke: AlexNet/2L physical plan sweep, scales 1-2X"
            : "physical plan sweep over scale and structured features");
  SweepTally tally;
  if (smoke) {
    SweepScale(dl::KnownCnn::kAlexNet, 2, {1.0, 2.0}, &reporter, &tally);
    SweepStructFeatures(dl::KnownCnn::kAlexNet, 2, 2.0, {10, 100},
                        &reporter, &tally);
  } else {
    SweepScale(dl::KnownCnn::kAlexNet, 4, {1.0, 2.0, 4.0, 8.0}, &reporter,
               &tally);
    SweepScale(dl::KnownCnn::kResNet50, 5, {1.0, 2.0, 4.0, 8.0}, &reporter,
               &tally);
    SweepStructFeatures(dl::KnownCnn::kAlexNet, 4, 8.0,
                        {10, 100, 1000, 10000}, &reporter, &tally);
    SweepStructFeatures(dl::KnownCnn::kResNet50, 5, 8.0,
                        {10, 100, 1000, 10000}, &reporter, &tally);
  }
  reporter.AddSection("summary", tally.ToJson());
  const std::string out = bench::FlagValue(
      argc, argv, "--out", smoke ? "BENCH_smoke_fig10.json" : "");
  if (!out.empty()) {
    Status st = reporter.Write(out);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
