// Regenerates Figure 11: system configuration sweeps. (A) runtime vs the
// worker degree of parallelism (cpu) with explicitly apportioned memory;
// (B) runtime vs the number of partitions np (cpu fixed to 4). Also prints
// the values the Vista optimizer picks. Paper shape: runtime decreases
// sub-linearly with cpu; VGG16 crashes beyond 4 cores (CNN inference
// memory blowup); np is non-monotonic — too few partitions crash the join
// (Core memory), too many add scheduling overhead (status-message
// compression past ~2000 tasks); the optimizer lands at or near the best
// settings.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

const dl::KnownCnn kCnns[] = {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                              dl::KnownCnn::kResNet50};

ExperimentSetup FoodsSetup(dl::KnownCnn cnn) {
  ExperimentSetup setup;
  setup.cnn = cnn;
  setup.num_layers = PaperNumLayers(cnn);
  setup.data = FoodsDataStats();
  return setup;
}

void SweepCpu() {
  std::printf("\n(A) runtime vs cpu (explicit apportioning, 8 nodes):\n");
  std::printf("%-6s", "cpu");
  for (auto cnn : kCnns) std::printf(" | %-12s", dl::KnownCnnToString(cnn));
  std::printf("\n");
  for (int cpu = 1; cpu <= 8; ++cpu) {
    std::printf("%-6d", cpu);
    for (auto cnn : kCnns) {
      DrillDownConfig config;
      config.cpu = cpu;
      auto r = RunDrillDown(FoodsSetup(cnn), config);
      if (!r.ok()) {
        std::printf(" | %-12s", "error");
        continue;
      }
      std::printf(" | %-12s",
                  r->crashed() ? "x (crash)" : bench::Outcome(*r).c_str());
    }
    std::printf("\n");
  }
}

void SweepNp() {
  std::printf("\n(B) runtime vs np (cpu = 4, 8 nodes):\n");
  std::printf("%-6s", "np");
  for (auto cnn : kCnns) std::printf(" | %-12s", dl::KnownCnnToString(cnn));
  std::printf("\n");
  for (int64_t np : {8, 16, 32, 64, 160, 224, 512, 1024, 2048, 4096}) {
    std::printf("%-6lld", static_cast<long long>(np));
    for (auto cnn : kCnns) {
      DrillDownConfig config;
      config.cpu = 4;
      config.num_partitions = np;
      auto r = RunDrillDown(FoodsSetup(cnn), config);
      if (!r.ok()) {
        std::printf(" | %-12s", "error");
        continue;
      }
      std::printf(" | %-12s",
                  r->crashed() ? "x (crash)" : bench::Outcome(*r).c_str());
    }
    std::printf("\n");
  }
}

void OptimizerPicks() {
  std::printf("\nOptimizer-picked values (paper: cpu 7/4/7; np 160/160/224 "
              "in the cpu=4 drill-down context):\n");
  for (auto cnn : kCnns) {
    Vista::Options options;
    options.cnn = cnn;
    options.num_layers = PaperNumLayers(cnn);
    options.data = FoodsDataStats();
    auto vista = Vista::Create(options);
    if (!vista.ok()) {
      std::printf("  %-10s infeasible: %s\n", dl::KnownCnnToString(cnn),
                  vista.status().ToString().c_str());
      continue;
    }
    std::printf("  %-10s %s\n", dl::KnownCnnToString(cnn),
                vista->decisions().ToString().c_str());
  }
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 11", "System configuration sweeps (Foods)");
  SweepCpu();
  SweepNp();
  OptimizerPicks();
  return 0;
}
