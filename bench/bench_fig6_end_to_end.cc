// Regenerates Figure 6: end-to-end reliability and efficiency of the six
// approaches on Spark-TF and Ignite-TF, for Foods and Amazon across the
// three roster CNNs. Paper shape: Lazy-5/7 crash for VGG16 on Spark;
// Lazy-7 crashes for all CNNs on Amazon/Ignite and for ResNet50 on
// Foods/Ignite; Eager crashes on Ignite/Amazon/ResNet50; Vista never
// crashes and is 58%-92% faster than Lazy baselines.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

void RunMatrix(PdSystem pd) {
  for (bool amazon : {false, true}) {
    std::printf("\n--- %s-TF on %s ---\n", PdSystemToString(pd),
                amazon ? "Amazon" : "Foods");
    std::printf("%-10s", "CNN");
    for (const auto& approach : StandardApproaches()) {
      std::printf(" | %-18s", approach.c_str());
    }
    std::printf("\n");
    for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                     dl::KnownCnn::kResNet50}) {
      ExperimentSetup setup;
      setup.pd = pd;
      setup.cnn = cnn;
      setup.num_layers = PaperNumLayers(cnn);
      setup.data = amazon ? AmazonDataStats() : FoodsDataStats();
      std::printf("%-10s", dl::KnownCnnToString(cnn));
      double vista_minutes = -1, best_lazy = -1;
      for (const auto& approach : StandardApproaches()) {
        auto r = RunApproach(setup, approach);
        if (!r.ok()) {
          std::printf(" | %-18s", ("error: " + r.status().ToString()).c_str());
          continue;
        }
        std::printf(" | %-18s",
                    bench::Outcome(r->result, r->pre_mat_seconds).c_str());
        const double minutes =
            (r->result.total_seconds + r->pre_mat_seconds) / 60.0;
        if (!r->result.crashed()) {
          if (approach == "Vista") vista_minutes = minutes;
          if (approach.rfind("Lazy-", 0) == 0 &&
              approach.find("Pre") == std::string::npos) {
            if (best_lazy < 0 || minutes < best_lazy) best_lazy = minutes;
          }
        }
      }
      if (vista_minutes > 0 && best_lazy > 0) {
        std::printf("  [Vista vs best Lazy: -%.0f%%]",
                    100.0 * (1.0 - vista_minutes / best_lazy));
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace vista

int main() {
  vista::bench::Banner(
      "Figure 6", "End-to-end reliability and efficiency (CPU cluster)");
  std::printf(
      "Paper: x = workload crash. Expected shape: Lazy-5/7 crash for VGG16\n"
      "on Spark; Lazy crashes on Ignite/Amazon for all CNNs and on\n"
      "Ignite/Foods for ResNet50 at 7 CPUs; Eager crashes on\n"
      "Ignite/Amazon/ResNet50 and spills heavily on Spark/Amazon/ResNet50;\n"
      "Vista never crashes and cuts runtimes by 58%%-92%% vs Lazy.\n");
  vista::RunMatrix(vista::PdSystem::kSparkLike);
  vista::RunMatrix(vista::PdSystem::kIgniteLike);
  return 0;
}
