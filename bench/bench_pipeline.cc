// Prefetch / layer-pipeline bench: the read-ahead plane (SpillManager
// prefetch + compute-aware depth in the executor) against the same engine
// with read-ahead disabled.
//
// The workload is the paper's feature-transfer inner loop under memory
// pressure: both base tables and the joined table live in a
// storage-constrained engine, so every partition read faults in from spill.
// Injected delayed I/O (FaultSite::kSpillReadDelay, rate 1.0) gives each
// spill read a deterministic stall sized to this machine's per-partition
// inference cost, modelling a congested volume. The serial run (prefetch
// depth 0, one compute thread) pays read-then-compute for every partition;
// the pipelined runs (same single compute thread, depths 1/2/4) overlap the
// stalls with partial-CNN GEMMs through the background reader — so the
// speedup measures overlap, not parallelism, and reproduces on 1 core.
//
// Sections in the JSON report ("extras"):
//   pipeline     serial_ms vs pipelined_ms (best depth) and their ratio
//                (overlap_ratio — the gated metric), plus per-depth times
//   prefetch     prefetch.* counters of the best pipelined run: requests,
//                hits, claimed (consumer won the race), dropped, and the
//                queue-depth high-water mark
//   determinism  1 if the materialized features are bit-identical across
//                prefetch depths {0, 1, 2, 4} (exit is non-zero otherwise)
//
// The regression gate tracks overlap_ratio and bit_identical, never raw
// milliseconds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "dataflow/engine.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/real_executor.h"

namespace vista::bench {
namespace {

struct PipelineRun {
  double total_ms = 0;
  double join_ms = 0;
  double materialize_ms = 0;
  df::EngineStats stats;
  /// Serialized partitions of the materialized feature table, for the
  /// bit-identical check across depths.
  std::vector<std::vector<uint8_t>> output_blobs;
  Status status = Status::OK();
};

Result<std::vector<std::vector<uint8_t>>> TableBlobs(const df::Table& table) {
  std::vector<std::vector<uint8_t>> blobs;
  for (const auto& p : table.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, p->ToBlob());
    blobs.push_back(std::move(blob));
  }
  return blobs;
}

/// One end-to-end pipeline pass on a fresh engine: persist both base
/// tables serialized (setup, untimed), then time join -> persist(joined)
/// -> materialize(top layer). `depth` drives both the engine's read-driven
/// ops and the executor's inference read-ahead; 0 is the serial reference.
/// `delay_ms` <= 0 disables the injected stalls (calibration).
PipelineRun RunPipeline(int depth, double delay_ms, int np,
                        int64_t storage_budget, const dl::CnnModel& model,
                        const std::vector<df::Record>& str_records,
                        const std::vector<df::Record>& img_records,
                        int target_layer) {
  PipelineRun run;
  df::EngineConfig config;
  config.num_workers = 1;
  // One compute thread: any speedup is read/compute overlap, not cores.
  config.cpus_per_worker = 1;
  config.budgets.storage = storage_budget;
  config.prefetch_depth = depth;
  config.prefetch_queue_capacity = std::max(4, depth);
  config.faults.seed = 11;
  if (delay_ms > 0) {
    config.faults.spill_read_delay_rate = 1.0;
    config.faults.spill_read_delay_ms = delay_ms;
  }
  df::Engine engine(config);

  auto t_str = engine.MakeTable(str_records, np);
  auto t_img = engine.MakeTable(img_records, np);
  if (!t_str.ok() || !t_img.ok()) {
    run.status = t_str.ok() ? t_img.status() : t_str.status();
    return run;
  }
  run.status = engine.Persist(&*t_str, df::PersistenceFormat::kSerialized);
  if (run.status.ok()) {
    run.status = engine.Persist(&*t_img, df::PersistenceFormat::kSerialized);
  }
  if (!run.status.ok()) return run;

  RealExecutor executor(&engine, &model);
  RealExecutorConfig exec;
  exec.num_partitions = np;
  exec.train_models = false;
  exec.prefetch_depth = depth;

  Stopwatch total;
  Stopwatch join_watch;
  auto joined =
      engine.Join(*t_str, *t_img, df::JoinStrategy::kShuffleHash, np);
  run.join_ms = join_watch.ElapsedSeconds() * 1e3;
  if (!joined.ok()) {
    run.status = joined.status();
    return run;
  }
  // The base tables are dead after the join; release their storage so the
  // joined table contends for the same constrained budget.
  engine.Unpersist(&*t_str);
  engine.Unpersist(&*t_img);
  run.status = engine.Persist(&*joined, df::PersistenceFormat::kSerialized);
  if (!run.status.ok()) return run;

  Stopwatch mat_watch;
  int64_t flops = 0;
  auto features =
      executor.MaterializeLayer(*joined, -1, -1, target_layer, exec, &flops);
  run.materialize_ms = mat_watch.ElapsedSeconds() * 1e3;
  run.total_ms = total.ElapsedSeconds() * 1e3;
  if (!features.ok()) {
    run.status = features.status();
    return run;
  }
  run.stats = engine.stats();
  auto blobs = TableBlobs(*features);
  if (!blobs.ok()) {
    run.status = blobs.status();
    return run;
  }
  run.output_blobs = std::move(blobs).value();
  return run;
}

int Main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const std::string out =
      FlagValue(argc, argv, "--out",
                smoke ? "BENCH_smoke_pipeline.json" : "BENCH_pipeline.json");
  Banner("pipeline",
         "compute-aware read-ahead + layer pipeline vs serial reads");
  BenchReporter reporter(
      "pipeline",
      "prefetch plane overlapping delayed spill reads with partial-CNN "
      "inference on one compute thread, vs the same engine reading "
      "synchronously");

  const int n = smoke ? 192 : 384;
  const int np = 16;
  const int reps = smoke ? 2 : 3;
  const std::vector<int> depths = {1, 2, 4};

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  if (!arch.ok()) {
    std::fprintf(stderr, "arch: %s\n", arch.status().ToString().c_str());
    return 1;
  }
  auto model =
      dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto top = arch->TopLayers(1);
  if (!top.ok() || top->empty()) {
    std::fprintf(stderr, "no top layer\n");
    return 1;
  }
  const int target_layer = top->front();

  feat::MultimodalDatasetSpec spec;
  spec.num_records = n;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  spec.seed = 3;
  auto data = feat::GenerateMultimodal(spec);
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("%d records x %d partitions, target layer %d (%s)\n", n, np,
              target_layer, arch->layer(target_layer).name.c_str());

  // Storage budget sized from the actual table footprints so both inputs
  // and the joined table must spill most of their partitions.
  int64_t table_bytes = 0;
  {
    df::EngineConfig probe_config;
    df::Engine probe(probe_config);
    auto ts = probe.MakeTable(data->t_str, np);
    auto ti = probe.MakeTable(data->t_img, np);
    if (!ts.ok() || !ti.ok()) {
      std::fprintf(stderr, "probe table failed\n");
      return 1;
    }
    table_bytes = ts->memory_bytes() + ti->memory_bytes();
  }
  const int64_t storage_budget = std::max<int64_t>(table_bytes / 6, 1 << 16);

  // Calibrate the injected stall to this machine's per-partition inference
  // cost: overlap is most visible (and the model most honest) when the
  // reader's stall and the consumer's compute are the same order.
  double delay_ms = std::atof(FlagValue(argc, argv, "--delay", "0").c_str());
  if (delay_ms <= 0) {
    PipelineRun calib = RunPipeline(0, 0, np, storage_budget, *model,
                                    data->t_str, data->t_img, target_layer);
    if (!calib.status.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n",
                   calib.status.ToString().c_str());
      return 1;
    }
    delay_ms = std::min(25.0, std::max(2.0, calib.materialize_ms / np));
    std::printf("calibration: materialize %.1f ms -> %.1f ms stall per "
                "spill read\n",
                calib.materialize_ms, delay_ms);
  }

  // --- Serial reference: prefetch off, best of `reps`.
  PipelineRun serial;
  for (int rep = 0; rep < reps; ++rep) {
    PipelineRun run = RunPipeline(0, delay_ms, np, storage_budget, *model,
                                  data->t_str, data->t_img, target_layer);
    if (!run.status.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   run.status.ToString().c_str());
      return 1;
    }
    if (rep == 0 || run.total_ms < serial.total_ms) serial = std::move(run);
  }

  // --- Pipelined runs at each depth, best of `reps`; everything must stay
  // bit-identical to the serial output.
  obs::Json pipeline = obs::Json::Object();
  pipeline.Set("records", obs::Json::Int(n));
  pipeline.Set("partitions", obs::Json::Int(np));
  pipeline.Set("delay_ms", obs::Json::Num(delay_ms));
  pipeline.Set("serial_ms", obs::Json::Num(serial.total_ms));
  PipelineRun best;
  bool identical = true;
  for (int depth : depths) {
    PipelineRun best_at_depth;
    for (int rep = 0; rep < reps; ++rep) {
      PipelineRun run = RunPipeline(depth, delay_ms, np, storage_budget,
                                    *model, data->t_str, data->t_img,
                                    target_layer);
      if (!run.status.ok()) {
        std::fprintf(stderr, "depth-%d run failed: %s\n", depth,
                     run.status.ToString().c_str());
        return 1;
      }
      if (rep == 0 || run.total_ms < best_at_depth.total_ms) {
        best_at_depth = std::move(run);
      }
    }
    if (best_at_depth.output_blobs != serial.output_blobs) {
      std::fprintf(stderr, "depth %d output DIVERGES from serial\n", depth);
      identical = false;
    }
    std::printf("depth %d: %.1f ms (join %.1f, materialize %.1f), "
                "prefetch %ld/%ld hits\n",
                depth, best_at_depth.total_ms, best_at_depth.join_ms,
                best_at_depth.materialize_ms,
                static_cast<long>(best_at_depth.stats.prefetch_hits),
                static_cast<long>(best_at_depth.stats.prefetch_requests));
    pipeline.Set("depth_" + std::to_string(depth) + "_ms",
                 obs::Json::Num(best_at_depth.total_ms));
    if (best.total_ms == 0 || best_at_depth.total_ms < best.total_ms) {
      best = std::move(best_at_depth);
    }
  }
  const double overlap_ratio = serial.total_ms / best.total_ms;
  pipeline.Set("pipelined_ms", obs::Json::Num(best.total_ms));
  pipeline.Set("overlap_ratio", obs::Json::Num(overlap_ratio));
  std::printf("serial %.1f ms vs pipelined %.1f ms: %.2fx overlap, "
              "outputs %s\n",
              serial.total_ms, best.total_ms, overlap_ratio,
              identical ? "bit-identical" : "DIVERGE");
  reporter.AddSection("pipeline", std::move(pipeline));

  obs::Json prefetch = obs::Json::Object();
  prefetch.Set("requests", obs::Json::Int(best.stats.prefetch_requests));
  prefetch.Set("hits", obs::Json::Int(best.stats.prefetch_hits));
  prefetch.Set("claimed", obs::Json::Int(best.stats.prefetch_claimed));
  prefetch.Set("dropped", obs::Json::Int(best.stats.prefetch_dropped));
  prefetch.Set("corrupt_dropped",
               obs::Json::Int(best.stats.prefetch_corrupt_dropped));
  prefetch.Set("queue_depth_peak",
               obs::Json::Int(best.stats.prefetch_queue_depth_peak));
  reporter.AddSection("prefetch", std::move(prefetch));

  obs::Json det = obs::Json::Object();
  det.Set("bit_identical", obs::Json::Int(identical ? 1 : 0));
  reporter.AddSection("determinism", std::move(det));

  Status st = reporter.Write(out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace vista::bench

int main(int argc, char** argv) { return vista::bench::Main(argc, argv); }
