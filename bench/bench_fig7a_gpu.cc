// Regenerates Figure 7(A): end-to-end reliability and efficiency on a
// single GPU node (32 GB RAM, 12 GB GPU, SSD) over Foods. Paper shape:
// Lazy-5 and Lazy-7 crash with VGG16; for ResNet50, Eager takes much
// longer than Vista due to costly disk spills.

#include <cstdio>

#include "bench/bench_util.h"
#include "vista/experiments.h"

namespace vista {
namespace {

ExperimentSetup GpuSetup(dl::KnownCnn cnn) {
  ExperimentSetup setup;
  setup.pd = PdSystem::kSparkLike;
  setup.cnn = cnn;
  setup.num_layers = PaperNumLayers(cnn);
  setup.data = FoodsDataStats();
  setup.env.num_nodes = 1;
  setup.env.gpu_memory_bytes = GiB(12);
  setup.node.gpu_memory_bytes = GiB(12);
  setup.node.disk_read_mbps = 500;  // SSD.
  setup.node.disk_write_mbps = 450;
  setup.use_gpu = true;
  return setup;
}

}  // namespace
}  // namespace vista

int main() {
  using namespace vista;
  bench::Banner("Figure 7(A)",
                "GPU single-node reliability and efficiency (Foods)");
  std::printf(
      "Paper: Lazy-5/7 crash with VGG16 (GPU memory blowup); Eager on\n"
      "ResNet50 is much slower than Vista due to disk spills.\n\n");
  std::printf("%-10s", "CNN");
  for (const auto& approach : StandardApproaches()) {
    std::printf(" | %-18s", approach.c_str());
  }
  std::printf("\n");
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    std::printf("%-10s", dl::KnownCnnToString(cnn));
    for (const auto& approach : StandardApproaches()) {
      auto r = RunApproach(GpuSetup(cnn), approach);
      if (!r.ok()) {
        std::printf(" | %-18s", ("error: " + r.status().ToString()).c_str());
        continue;
      }
      std::printf(" | %-18s",
                  bench::Outcome(r->result, r->pre_mat_seconds).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
